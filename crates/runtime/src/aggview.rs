//! Incremental maintenance of aggregate rules.
//!
//! Rules with aggregate heads, such as SP3
//!
//! ```text
//! sp3 spCost(@S,@D,min<C>) :- path(@S,@D,@Z,P,C).
//! ```
//!
//! are not executed as join strands; instead they are maintained as
//! incremental aggregate views, following the techniques of Ramakrishnan et
//! al. for incremental evaluation of queries with aggregation (Section 3.3
//! and Section 4 of the paper). Each group keeps an ordered multiset of its
//! input values so that
//!
//! * an insertion updates the aggregate in O(log n), and
//! * a deletion re-derives the aggregate in O(log n) time and O(n) space —
//!   the complexity quoted in the paper for min/max re-evaluation,
//!
//! emitting a deletion of the old aggregate tuple and an insertion of the
//! new one whenever the value actually changes (which is what lets the
//! downstream `shortestPath` rule react to improvements and retractions).
//!
//! Extra body atoms (e.g. the `magicDst(@D)` literal in rule SP3-SD) act as
//! *guards*: a source delta only feeds the aggregate when the guard atoms
//! have matches in the local store. Guards are intended for static "magic"
//! tables seeded before execution; retroactive changes to guard relations
//! do not replay previously-skipped source tuples.

use crate::expr::Bindings;
use crate::store::Store;
use crate::strand::bind_atom;
use crate::tuple::{Sign, Tuple, TupleDelta};
use ndlog_lang::{AggFunc, Atom, Literal, Rule, Term, Value};
use std::collections::BTreeMap;

/// How each head field of the aggregate rule is produced.
#[derive(Debug, Clone, PartialEq)]
enum HeadField {
    /// Copied from this column of the source relation (a group-by field).
    Group(usize),
    /// The aggregate value itself.
    AggValue,
    /// A constant.
    Const(Value),
}

/// An incrementally maintained aggregate view.
#[derive(Debug, Clone)]
pub struct AggregateView {
    rule_label: String,
    head_relation: String,
    source_relation: String,
    func: AggFunc,
    value_col: usize,
    group_cols: Vec<usize>,
    head_template: Vec<HeadField>,
    source_atom: Atom,
    guards: Vec<Atom>,
    groups: BTreeMap<Vec<Value>, GroupState>,
}

#[derive(Debug, Clone, Default)]
struct GroupState {
    /// value -> multiplicity.
    multiset: BTreeMap<Value, usize>,
    /// Total number of contributing tuples.
    total: usize,
    /// The head tuple currently derived for this group, if any.
    current: Option<Tuple>,
}

impl GroupState {
    fn aggregate(&self, func: AggFunc) -> Option<Value> {
        if self.total == 0 {
            return None;
        }
        match func {
            AggFunc::Min => self.multiset.keys().next().cloned(),
            AggFunc::Max => self.multiset.keys().next_back().cloned(),
            AggFunc::Count => Some(Value::Int(self.total as i64)),
            AggFunc::Sum => {
                let mut sum = 0.0;
                for (v, n) in &self.multiset {
                    sum += v.as_f64().unwrap_or(0.0) * *n as f64;
                }
                Some(Value::Float(sum))
            }
        }
    }
}

impl AggregateView {
    /// Build a view from an aggregate rule. Returns an error message when
    /// the rule does not have the supported shape (exactly one aggregate in
    /// the head, a unique source atom providing the aggregated variable,
    /// only predicate guards — no assignments or filters).
    pub fn from_rule(rule: &Rule) -> Result<AggregateView, String> {
        let agg_positions = rule.head.aggregate_positions();
        if agg_positions.len() != 1 {
            return Err(format!(
                "rule {}: aggregate views require exactly one aggregate head argument",
                rule.label
            ));
        }
        let Term::Agg(agg) = &rule.head.args[agg_positions[0]] else {
            unreachable!("position came from aggregate_positions");
        };
        if rule.body.iter().any(|l| !matches!(l, Literal::Atom(_))) {
            return Err(format!(
                "rule {}: aggregate rules may not contain assignments or filters",
                rule.label
            ));
        }
        let body_atoms: Vec<&Atom> = rule.body_atoms().collect();
        let providers: Vec<&Atom> = body_atoms
            .iter()
            .copied()
            .filter(|a| {
                a.args
                    .iter()
                    .any(|t| t.var_name() == Some(agg.var.as_str()))
            })
            .collect();
        if providers.len() != 1 {
            return Err(format!(
                "rule {}: the aggregated variable must be provided by exactly one body atom",
                rule.label
            ));
        }
        let source = providers[0].clone();
        let guards: Vec<Atom> = body_atoms
            .into_iter()
            .filter(|a| a.name != source.name || **a != source)
            .cloned()
            .collect();
        let col_of = |var: &str| -> Option<usize> {
            source.args.iter().position(|t| t.var_name() == Some(var))
        };
        let value_col = col_of(&agg.var).ok_or_else(|| {
            format!(
                "rule {}: aggregated variable not in source atom",
                rule.label
            )
        })?;

        let mut head_template = Vec::with_capacity(rule.head.arity());
        let mut group_cols = Vec::new();
        for term in &rule.head.args {
            match term {
                Term::Agg(_) => head_template.push(HeadField::AggValue),
                Term::Const(c) => head_template.push(HeadField::Const(c.clone())),
                Term::Var(v) => {
                    let col = col_of(&v.name).ok_or_else(|| {
                        format!(
                            "rule {}: head variable {} not found in the source atom",
                            rule.label, v.name
                        )
                    })?;
                    group_cols.push(col);
                    head_template.push(HeadField::Group(col));
                }
            }
        }
        Ok(AggregateView {
            rule_label: rule.label.clone(),
            head_relation: rule.head.name.clone(),
            source_relation: source.name.clone(),
            func: agg.func,
            value_col,
            group_cols,
            head_template,
            source_atom: source,
            guards,
            groups: BTreeMap::new(),
        })
    }

    /// The relation whose deltas feed this view.
    pub fn source_relation(&self) -> &str {
        &self.source_relation
    }

    /// The relation this view derives.
    pub fn head_relation(&self) -> &str {
        &self.head_relation
    }

    /// The label of the originating rule.
    pub fn rule_label(&self) -> &str {
        &self.rule_label
    }

    /// The aggregate function.
    pub fn func(&self) -> AggFunc {
        self.func
    }

    /// Number of currently non-empty groups.
    pub fn group_count(&self) -> usize {
        self.groups.len()
    }

    /// Forget all group state (a node crash loses the view along with the
    /// store it was built from; rejoin rebuilds both from scratch).
    pub fn reset(&mut self) {
        self.groups.clear();
    }

    /// Current aggregate value for the group a source tuple belongs to.
    pub fn current_for(&self, source_tuple: &Tuple) -> Option<Value> {
        let key = source_tuple.project(&self.group_cols);
        self.groups.get(&key).and_then(|g| g.aggregate(self.func))
    }

    /// The group key a source tuple belongs to, or `None` when the tuple
    /// is too short to project (heterogeneous hand-built stores).
    pub fn group_key(&self, source_tuple: &Tuple) -> Option<Vec<Value>> {
        self.group_cols
            .iter()
            .map(|&c| source_tuple.get(c).cloned())
            .collect()
    }

    /// The head tuple currently derived for a group, if any.
    pub fn current_output(&self, key: &[Value]) -> Option<&Tuple> {
        self.groups.get(key)?.current.as_ref()
    }

    /// Map a head (output) tuple back to its group key, or `None` when the
    /// tuple cannot be an output of this view (wrong arity or mismatched
    /// constants).
    pub fn output_group_key(&self, head_tuple: &Tuple) -> Option<Vec<Value>> {
        if head_tuple.arity() != self.head_template.len() {
            return None;
        }
        let mut by_col: BTreeMap<usize, &Value> = BTreeMap::new();
        for (pos, field) in self.head_template.iter().enumerate() {
            match field {
                HeadField::Group(col) => {
                    by_col.insert(*col, head_tuple.get(pos)?);
                }
                HeadField::Const(c) if Some(c) != head_tuple.get(pos) => return None,
                _ => {}
            }
        }
        self.group_cols
            .iter()
            .map(|c| by_col.get(c).map(|&v| v.clone()))
            .collect()
    }

    /// Rebuild one group's state from the tuples currently stored in the
    /// source relation — the re-derive half of the DRed pass's group
    /// pinning. The over-delete phase leaves the view untouched while it
    /// removes source tuples (and the group's head output) from the store;
    /// this recomputes the multiset from scratch over the surviving source
    /// tuples (guards included), installs the new aggregate as the group's
    /// current output, and returns it as an insertion delta for the caller
    /// to ingest (the old output is already gone from the store). Returns
    /// `None` when the group has no surviving inputs.
    ///
    /// Rebuilding from the store — rather than patching the multiset —
    /// also heals any drift the multiset accumulated while derivation
    /// counts were inexact.
    pub fn rebuild_group(
        &mut self,
        store: &Store,
        key: &[Value],
        stats: &mut crate::index::JoinStats,
    ) -> Option<TupleDelta> {
        let mut state = GroupState::default();
        if let Some(relation) = store.relation(&self.source_relation) {
            // Probe on the (sorted, deduplicated) group columns; verify the
            // full group key residually to cover repeated group variables.
            let mut bound: BTreeMap<usize, Value> = BTreeMap::new();
            for (col, val) in self.group_cols.iter().zip(key.iter()) {
                bound.entry(*col).or_insert_with(|| val.clone());
            }
            let cols: Vec<usize> = bound.keys().copied().collect();
            let vals: Vec<Value> = bound.values().cloned().collect();
            let matches: Vec<Tuple> = relation
                .lookup(&cols, &vals, u64::MAX, stats)
                .filter(|s| self.group_key(&s.tuple).as_deref() == Some(key))
                .map(|s| s.tuple.clone())
                .collect();
            for tuple in matches {
                if !self.guards_satisfied(store, &tuple) {
                    continue;
                }
                let Some(value) = tuple.get(self.value_col).cloned() else {
                    continue;
                };
                *state.multiset.entry(value).or_insert(0) += 1;
                state.total += 1;
            }
        }
        let new_head = state.aggregate(self.func).map(|v| self.head_tuple(key, &v));
        state.current = new_head.clone();
        if state.total == 0 {
            self.groups.remove(key);
        } else {
            self.groups.insert(key.to_vec(), state);
        }
        new_head.map(|t| TupleDelta::insert(self.head_relation.clone(), t))
    }

    fn head_tuple(&self, key: &[Value], agg_value: &Value) -> Tuple {
        // `key` holds the group values in `group_cols` order; map source
        // column -> value for template instantiation.
        let mut by_col: BTreeMap<usize, &Value> = BTreeMap::new();
        for (col, val) in self.group_cols.iter().zip(key.iter()) {
            by_col.insert(*col, val);
        }
        let values = self
            .head_template
            .iter()
            .map(|f| match f {
                HeadField::Group(col) => (*by_col.get(col).expect("group value present")).clone(),
                HeadField::AggValue => agg_value.clone(),
                HeadField::Const(c) => c.clone(),
            })
            .collect();
        Tuple::new(values)
    }

    /// The (relation, bound-column signature) pairs this view probes:
    /// every guard atom's constants plus the columns whose variables the
    /// source atom binds, and the source relation's group columns (used by
    /// [`AggregateView::rebuild_group`] during the DRed re-derive phase).
    /// Declared up front (like strand probe plans) so these checks run as
    /// index probes instead of relation scans.
    pub fn index_requirements(&self) -> Vec<(String, Vec<usize>)> {
        let mut out = self.guard_index_requirements();
        let group_sig: std::collections::BTreeSet<usize> =
            self.group_cols.iter().copied().collect();
        if !group_sig.is_empty() {
            out.push((
                self.source_relation.clone(),
                group_sig.into_iter().collect(),
            ));
        }
        out
    }

    /// The guard-atom half of [`AggregateView::index_requirements`].
    fn guard_index_requirements(&self) -> Vec<(String, Vec<usize>)> {
        let mut source_vars: std::collections::BTreeSet<&str> = std::collections::BTreeSet::new();
        for term in &self.source_atom.args {
            if let Term::Var(v) = term {
                source_vars.insert(v.name.as_str());
            }
        }
        self.guards
            .iter()
            .filter_map(|guard| {
                let cols: Vec<usize> = guard
                    .args
                    .iter()
                    .enumerate()
                    .filter_map(|(i, t)| match t {
                        Term::Const(_) => Some(i),
                        Term::Var(v) if source_vars.contains(v.name.as_str()) => Some(i),
                        _ => None,
                    })
                    .collect();
                (!cols.is_empty()).then(|| (guard.name.clone(), cols))
            })
            .collect()
    }

    fn guards_satisfied(&self, store: &Store, source_tuple: &Tuple) -> bool {
        if self.guards.is_empty() {
            return true;
        }
        let mut env = Bindings::new();
        if !bind_atom(&self.source_atom, source_tuple, &mut env) {
            return false;
        }
        self.guards.iter().all(|guard| {
            let Some(relation) = store.relation(&guard.name) else {
                return false;
            };
            let mut cols = Vec::new();
            let mut vals = Vec::new();
            for (i, t) in guard.args.iter().enumerate() {
                match t {
                    Term::Const(c) => {
                        cols.push(i);
                        vals.push(c.clone());
                    }
                    Term::Var(v) => {
                        if let Some(val) = env.get(&v.name) {
                            cols.push(i);
                            vals.push(val.clone());
                        }
                    }
                    Term::Agg(_) => {}
                }
            }
            relation.contains_match(&cols, &vals, u64::MAX)
        })
    }

    /// Apply a source delta, returning the head deltas to propagate.
    pub fn apply(&mut self, store: &Store, delta: &TupleDelta) -> Vec<TupleDelta> {
        if delta.relation != self.source_relation {
            return Vec::new();
        }
        if !self.guards_satisfied(store, &delta.tuple) {
            return Vec::new();
        }
        let Some(value) = delta.tuple.get(self.value_col).cloned() else {
            return Vec::new();
        };
        let key = delta.tuple.project(&self.group_cols);
        let group = self.groups.entry(key.clone()).or_default();

        match delta.sign {
            Sign::Insert => {
                *group.multiset.entry(value).or_insert(0) += 1;
                group.total += 1;
            }
            Sign::Delete => {
                match group.multiset.get_mut(&value) {
                    Some(n) if *n > 1 => {
                        *n -= 1;
                        group.total -= 1;
                    }
                    Some(_) => {
                        group.multiset.remove(&value);
                        group.total -= 1;
                    }
                    // Deleting a value we never saw (e.g. its insertion was
                    // pruned by an aggregate selection): ignore.
                    None => return Vec::new(),
                }
            }
        }

        let new_value = group.aggregate(self.func);
        let old_head = group.current.clone();
        let new_head = new_value.map(|v| self.head_tuple(&key, &v));

        let mut out = Vec::new();
        if old_head == new_head {
            return out;
        }
        if let Some(old) = old_head {
            out.push(TupleDelta::delete(self.head_relation.clone(), old));
        }
        if let Some(new) = new_head.clone() {
            out.push(TupleDelta::insert(self.head_relation.clone(), new));
        }
        // Update (or drop) the group state.
        if let Some(g) = self.groups.get_mut(&key) {
            if g.total == 0 {
                self.groups.remove(&key);
            } else {
                g.current = new_head;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ndlog_lang::parse_program;

    fn view(src: &str) -> AggregateView {
        let p = parse_program(src).unwrap();
        AggregateView::from_rule(&p.rules[0]).unwrap()
    }

    fn sp_cost_view() -> AggregateView {
        view("sp3 spCost(@S,@D,min<C>) :- path(@S,@D,@Z,P,C).")
    }

    fn path(s: u32, d: u32, z: u32, c: f64) -> Tuple {
        Tuple::new(vec![
            Value::addr(s),
            Value::addr(d),
            Value::addr(z),
            Value::list(vec![Value::addr(s), Value::addr(d)]),
            Value::Float(c),
        ])
    }

    #[test]
    fn min_improves_and_emits_replacement() {
        let mut v = sp_cost_view();
        let store = Store::new();
        let out = v.apply(&store, &TupleDelta::insert("path", path(0, 1, 1, 5.0)));
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].sign, Sign::Insert);
        assert_eq!(out[0].relation, "spCost");
        assert_eq!(out[0].tuple.get(2), Some(&Value::Float(5.0)));

        // A worse path does not change the aggregate.
        let out = v.apply(&store, &TupleDelta::insert("path", path(0, 1, 2, 9.0)));
        assert!(out.is_empty());

        // A better path retracts the old aggregate and asserts the new one.
        let out = v.apply(&store, &TupleDelta::insert("path", path(0, 1, 3, 2.0)));
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].sign, Sign::Delete);
        assert_eq!(out[0].tuple.get(2), Some(&Value::Float(5.0)));
        assert_eq!(out[1].sign, Sign::Insert);
        assert_eq!(out[1].tuple.get(2), Some(&Value::Float(2.0)));
        assert_eq!(v.group_count(), 1);
        assert_eq!(v.current_for(&path(0, 1, 1, 0.0)), Some(Value::Float(2.0)));
    }

    #[test]
    fn deletion_rederives_from_remaining_inputs() {
        let mut v = sp_cost_view();
        let store = Store::new();
        v.apply(&store, &TupleDelta::insert("path", path(0, 1, 1, 5.0)));
        v.apply(&store, &TupleDelta::insert("path", path(0, 1, 2, 2.0)));
        // Deleting the best path falls back to the next best (O(log n)).
        let out = v.apply(&store, &TupleDelta::delete("path", path(0, 1, 2, 2.0)));
        assert_eq!(out.len(), 2);
        assert_eq!(out[1].tuple.get(2), Some(&Value::Float(5.0)));
        // Deleting the last input retracts the aggregate entirely.
        let out = v.apply(&store, &TupleDelta::delete("path", path(0, 1, 1, 5.0)));
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].sign, Sign::Delete);
        assert_eq!(v.group_count(), 0);
    }

    #[test]
    fn duplicate_values_are_multiset_counted() {
        let mut v = sp_cost_view();
        let store = Store::new();
        v.apply(&store, &TupleDelta::insert("path", path(0, 1, 1, 3.0)));
        v.apply(&store, &TupleDelta::insert("path", path(0, 1, 2, 3.0)));
        // Removing one of the two cost-3 paths keeps the aggregate at 3.
        let out = v.apply(&store, &TupleDelta::delete("path", path(0, 1, 1, 3.0)));
        assert!(out.is_empty());
        let out = v.apply(&store, &TupleDelta::delete("path", path(0, 1, 2, 3.0)));
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].sign, Sign::Delete);
    }

    #[test]
    fn groups_are_independent() {
        let mut v = sp_cost_view();
        let store = Store::new();
        let a = v.apply(&store, &TupleDelta::insert("path", path(0, 1, 1, 5.0)));
        let b = v.apply(&store, &TupleDelta::insert("path", path(0, 2, 1, 7.0)));
        assert_eq!(a.len(), 1);
        assert_eq!(b.len(), 1);
        assert_eq!(v.group_count(), 2);
        assert_eq!(b[0].tuple.get(1), Some(&Value::addr(2u32)));
    }

    #[test]
    fn deleting_unseen_value_is_ignored() {
        let mut v = sp_cost_view();
        let store = Store::new();
        v.apply(&store, &TupleDelta::insert("path", path(0, 1, 1, 5.0)));
        let out = v.apply(&store, &TupleDelta::delete("path", path(0, 1, 9, 4.0)));
        assert!(out.is_empty());
        assert_eq!(v.current_for(&path(0, 1, 1, 0.0)), Some(Value::Float(5.0)));
    }

    #[test]
    fn max_count_and_sum_aggregates() {
        let store = Store::new();
        let mut vmax = view("m best(@S, max<C>) :- obs(@S, C).");
        let obs = |s: u32, c: i64| Tuple::new(vec![Value::addr(s), Value::Int(c)]);
        vmax.apply(&store, &TupleDelta::insert("obs", obs(0, 3)));
        let out = vmax.apply(&store, &TupleDelta::insert("obs", obs(0, 9)));
        assert_eq!(out[1].tuple.get(1), Some(&Value::Int(9)));

        let mut vcount = view("c deg(@S, count<D>) :- edge(@S, @D).");
        let edge = |s: u32, d: u32| Tuple::new(vec![Value::addr(s), Value::addr(d)]);
        vcount.apply(&store, &TupleDelta::insert("edge", edge(0, 1)));
        let out = vcount.apply(&store, &TupleDelta::insert("edge", edge(0, 2)));
        assert_eq!(out[1].tuple.get(1), Some(&Value::Int(2)));

        let mut vsum = view("s total(@S, sum<C>) :- obs(@S, C).");
        vsum.apply(&store, &TupleDelta::insert("obs", obs(0, 3)));
        let out = vsum.apply(&store, &TupleDelta::insert("obs", obs(0, 4)));
        assert_eq!(out[1].tuple.get(1), Some(&Value::Float(7.0)));
    }

    #[test]
    fn guard_atoms_filter_source_deltas() {
        let p = parse_program("sd3 spCost(@D,@S,min<C>) :- magicDst(@D), pathDst(@D,@S,@Z,P,C).")
            .unwrap();
        let mut v = AggregateView::from_rule(&p.rules[0]).unwrap();
        assert_eq!(v.source_relation(), "pathDst");

        let mut store = Store::new();
        let pd = |d: u32, s: u32, c: f64| {
            Tuple::new(vec![
                Value::addr(d),
                Value::addr(s),
                Value::addr(s),
                Value::nil(),
                Value::Float(c),
            ])
        };
        // No magicDst entry: the delta is filtered out.
        assert!(v
            .apply(&store, &TupleDelta::insert("pathDst", pd(1, 0, 4.0)))
            .is_empty());
        // Seed the magic table for destination 1 and retry.
        store.apply(&TupleDelta::insert(
            "magicDst",
            Tuple::new(vec![Value::addr(1u32)]),
        ));
        let out = v.apply(&store, &TupleDelta::insert("pathDst", pd(1, 0, 4.0)));
        assert_eq!(out.len(), 1);
        // A different destination still has no magic entry.
        assert!(v
            .apply(&store, &TupleDelta::insert("pathDst", pd(2, 0, 4.0)))
            .is_empty());
    }

    #[test]
    fn malformed_rules_are_rejected() {
        let reject = |src: &str| {
            let p = parse_program(src).unwrap();
            AggregateView::from_rule(&p.rules[0])
        };
        assert!(reject("a x(@S, C) :- p(@S, C).").is_err(), "no aggregate");
        assert!(
            reject("a x(@S, min<C>, max<C>) :- p(@S, C).").is_err(),
            "two aggregates"
        );
        assert!(
            reject("a x(@S, min<C>) :- p(@S, C), q(@S, C).").is_err(),
            "ambiguous provider"
        );
        assert!(
            reject("a x(@S, min<C>) :- p(@S, C), C < 5.").is_err(),
            "filters not allowed"
        );
        assert!(
            reject("a x(@S, D, min<C>) :- p(@S, C).").is_err(),
            "head variable missing from source"
        );
    }

    #[test]
    fn other_relations_are_ignored() {
        let mut v = sp_cost_view();
        let store = Store::new();
        let out = v.apply(&store, &TupleDelta::insert("link", path(0, 1, 1, 5.0)));
        assert!(out.is_empty());
    }
}
