//! DRed-style two-phase deletion maintenance (over-delete / re-derive).
//!
//! The count algorithm of Gupta et al. is only exact when insertions and
//! deletions are counted under the *same* duplicate-inference discipline.
//! Pipelined semi-naive evaluation guarantees one count per derivation
//! (Theorem 2), but SN/BSN initial runs may over-count (repeated
//! inferences), and P2's primary-key replacements fold counts away
//! entirely. A deletion cascade that trusts those counts can then strand
//! tuples whose counts never reach zero — and once a stale tuple survives,
//! the aggregate views built on top of it (e.g. `spCost`) advance past the
//! pending retraction and the error becomes permanent (the
//! mixed-strategy-churn edge formerly documented in
//! `tests/indexed_joins.rs`).
//!
//! This module implements the classic *delete-and-rederive* (DRed) answer
//! from the incremental view-maintenance literature, adapted to rule
//! strands and incremental aggregate views:
//!
//! 1. **Over-delete** ([`over_delete`]): starting from base tuples that
//!    were actually removed from the store, mark the entire downstream
//!    closure — every stored tuple reachable through a strand firing or an
//!    aggregate view — and then remove every marked tuple outright,
//!    *ignoring derivation counts*. While the closure runs, aggregate
//!    groups are **pinned**: the views are not updated, so a cascade
//!    cannot race past a pending retraction (the group's current output is
//!    marked as-is and the group is recorded as dirty instead).
//! 2. **Re-derive** ([`rederive_inserts`] plus
//!    [`crate::aggview::AggregateView::rebuild_group`]): each over-deleted
//!    tuple that still has a derivation over the post-removal store is
//!    re-inserted, and each dirty aggregate group is rebuilt from the
//!    stored source tuples. The re-insertions then cascade through the
//!    normal (pipelined) insert path, which restores any remaining
//!    downstream survivors.
//!
//! Over-deletion may over-approximate (it marks tuples that are still
//! derivable); that is by design — phase 2 restores them — and is what
//! makes the pass correct for *any* initial evaluation strategy followed
//! by updates, because no step ever consults a derivation count.
//!
//! In the distributed engine, the closure stops at the node boundary:
//! derivations whose head is located at another node are collected as
//! remote deletion deltas (shipped like any other derivation) instead of
//! being marked locally, and the receiving node runs its own pass. This is
//! sound for localized programs, where every rule body is single-site and
//! a locally stored, locally derived tuple is locally re-derivable.

use crate::aggview::AggregateView;
use crate::batch::{BatchOutput, BatchScratch, BatchTrigger};
use crate::expr::EvalError;
use crate::index::JoinStats;
use crate::store::Store;
use crate::strand::CompiledStrand;
use crate::tuple::{Sign, Tuple, TupleDelta};
use ndlog_lang::{Literal, Term, Value};
use ndlog_net::NodeAddr;
use std::collections::{BTreeMap, BTreeSet};

/// The result of the over-delete phase.
#[derive(Debug, Default)]
pub struct Marking {
    /// Every removal, as deletion deltas in deterministic discovery order:
    /// the seeds first (already removed by the caller), then the marked
    /// closure (removed by [`over_delete`] itself).
    pub removed: Vec<TupleDelta>,
    /// How many leading entries of `removed` are seeds. Seeds are *not*
    /// re-derivation candidates: an external deletion, an expiry or the
    /// delete-half of a primary-key replacement is authoritative.
    pub seed_count: usize,
    /// Aggregate-view groups whose pinned state must be rebuilt from the
    /// post-removal store: `(view index, group key)`, sorted.
    pub dirty_groups: Vec<(usize, Vec<Value>)>,
    /// Deletion derivations whose head lives at another node (distributed
    /// mode only): `(destination, delta)` in derivation order, to be
    /// shipped like any forward-pass derivation.
    pub remote: Vec<(NodeAddr, TupleDelta)>,
}

impl Marking {
    /// The over-deleted tuples that re-derivation should try to restore
    /// (everything marked beyond the seeds).
    pub fn rederive_candidates(&self) -> &[TupleDelta] {
        &self.removed[self.seed_count..]
    }
}

/// Mark `tuple` if it is currently stored and not yet marked, growing the
/// closure frontier.
fn mark(
    store: &Store,
    relation: String,
    tuple: Tuple,
    marked: &mut BTreeSet<(String, Tuple)>,
    order: &mut Vec<TupleDelta>,
    frontier: &mut Vec<TupleDelta>,
) {
    let stored = store
        .relation(&relation)
        .is_some_and(|r| r.contains(&tuple));
    if !stored {
        return;
    }
    if marked.insert((relation.clone(), tuple.clone())) {
        let delta = TupleDelta::delete(relation, tuple);
        order.push(delta.clone());
        frontier.push(delta);
    }
}

/// Phase 1: over-delete the downstream closure of `seeds`.
///
/// `seeds` are deletion deltas for tuples the caller has **already
/// removed** from the store (an external base deletion, a soft-state
/// expiry, or the old half of a primary-key replacement). Classic DRed
/// computes the over-deletion against the *pre-deletion* database, so the
/// closure restores each absent seed for its duration (when the seed's
/// slot is still free — a replacement's old half stays out, its key now
/// belongs to the new tuple): without this, a derivation jointly
/// supported by two seeds of the same batch would be missed, because
/// neither seed's firing could find the other as a join partner. The
/// closure then runs with full join visibility (`seq_limit = u64::MAX`) —
/// marked tuples stay visible as join partners until the whole closure is
/// known — the restored seeds are taken back out, and every marked tuple
/// is removed outright, regardless of its derivation count.
///
/// Residual edge (accepted): two replacement old-halves in one batch that
/// *jointly* support a derivation cannot both be restored (their keys are
/// occupied), so that derivation would be missed. It requires a rule
/// joining its own keyed head relation at two different keys replaced in
/// the same instant — no localized program in this repository has one.
///
/// Aggregate views are pinned for the duration: when a marked tuple feeds
/// a view, the group's *current* output is marked (so downstream joins
/// still retract against the not-yet-advanced aggregate) and the group is
/// recorded as dirty for the rebuild in phase 2; the view's multiset is
/// not touched here.
///
/// `self_addr` is the evaluating node in distributed mode: derivations
/// located elsewhere are collected in [`Marking::remote`] instead of being
/// marked. Pass `None` in the centralized evaluator (everything is local).
pub fn over_delete(
    store: &mut Store,
    strands: &[CompiledStrand],
    views: &[AggregateView],
    seeds: Vec<TupleDelta>,
    self_addr: Option<NodeAddr>,
    stats: &mut JoinStats,
) -> Result<Marking, EvalError> {
    let mut marked: BTreeSet<(String, Tuple)> = BTreeSet::new();
    let mut order: Vec<TupleDelta> = Vec::new();
    let mut frontier: Vec<TupleDelta> = Vec::new();
    for seed in seeds {
        debug_assert_eq!(seed.sign, Sign::Delete);
        if marked.insert((seed.relation.clone(), seed.tuple.clone())) {
            order.push(seed.clone());
            frontier.push(seed);
        }
    }
    let seed_count = order.len();
    let mut dirty: BTreeSet<(usize, Vec<Value>)> = BTreeSet::new();
    let mut remote: Vec<(NodeAddr, TupleDelta)> = Vec::new();

    // Restore absent seeds so the closure joins against the pre-deletion
    // database (see the doc comment). Seeds whose slot is occupied — an
    // identical tuple re-derived since the removal, or a replacement's new
    // winner — stay as they are.
    let now = store.now_micros();
    let seq = store.current_seq();
    let mut temporarily_restored: Vec<(String, Tuple)> = Vec::new();
    for delta in &order {
        let Some(relation) = store.relation_mut(&delta.relation) else {
            continue;
        };
        if relation.get_by_key_of(&delta.tuple).is_none() {
            relation.insert(delta.tuple.clone(), seq, now);
            temporarily_restored.push((delta.relation.clone(), delta.tuple.clone()));
        }
    }

    // The closure runs in *waves*: the store never changes while it runs,
    // so every frontier delta of a wave can fire against the same snapshot
    // and each strand drains its share of the wave through one batched
    // firing (flat buffers, no per-environment allocation). Discovery
    // order within a wave is (stage, trigger) instead of the old
    // (trigger, stage), which only permutes `order` among tuples of the
    // same wave — the marked closure, being a monotone fixpoint, is
    // identical, and the order is still deterministic for a given input.
    // The two wave buffers ping-pong: each iteration recycles the previous
    // wave's allocation for the next frontier instead of growing a fresh
    // `Vec` per wave.
    let mut scratch = BatchScratch::default();
    let mut batch_out = BatchOutput::default();
    let mut wave: Vec<TupleDelta> = Vec::new();
    while !frontier.is_empty() {
        wave.clear();
        std::mem::swap(&mut wave, &mut frontier);
        let mut triggers: Vec<BatchTrigger> = Vec::new();
        // Aggregate views fed by a wave relation: pin the group (mark its
        // current output as-is, defer the recomputation) and dirty it.
        for delta in &wave {
            for (view_idx, view) in views.iter().enumerate() {
                if view.source_relation() == delta.relation {
                    if let Some(key) = view.group_key(&delta.tuple) {
                        if let Some(out) = view.current_output(&key).cloned() {
                            mark(
                                store,
                                view.head_relation().to_string(),
                                out,
                                &mut marked,
                                &mut order,
                                &mut frontier,
                            );
                        }
                        dirty.insert((view_idx, key));
                    }
                }
                // A marked tuple *of* a view's head relation (e.g. an
                // aggregate output retracted by a strand-derived deletion
                // in an exotic program) also dirties its group, so the
                // rebuild reconciles the view's notion of "current".
                if view.head_relation() == delta.relation {
                    if let Some(key) = view.output_group_key(&delta.tuple) {
                        dirty.insert((view_idx, key));
                    }
                }
            }
        }
        // One over-delete step through every strand, wave-batched.
        for strand in strands {
            triggers.clear();
            triggers.extend(
                wave.iter()
                    .filter(|delta| delta.relation == strand.trigger_relation())
                    .map(|delta| BatchTrigger {
                        delta,
                        seq_limit: u64::MAX,
                    }),
            );
            if triggers.is_empty() {
                continue;
            }
            strand.fire_batch(store, &triggers, stats, &mut scratch, &mut batch_out)?;
            batch_out.drain_into(|_, derivation| match (self_addr, derivation.location) {
                (Some(me), Some(dest)) if dest != me => {
                    remote.push((dest, derivation.delta));
                }
                _ => mark(
                    store,
                    derivation.delta.relation,
                    derivation.delta.tuple,
                    &mut marked,
                    &mut order,
                    &mut frontier,
                ),
            });
        }
    }

    // The restored seeds go back out before the removal phase.
    for (relation, tuple) in temporarily_restored {
        if let Some(r) = store.relation_mut(&relation) {
            r.remove(&tuple);
        }
    }
    // Removal: the marked closure leaves the store outright — counts are
    // exactly what this pass does not trust.
    for delta in &order[seed_count..] {
        if let Some(relation) = store.relation_mut(&delta.relation) {
            relation.remove(&delta.tuple);
        }
    }

    Ok(Marking {
        removed: order,
        seed_count,
        dirty_groups: dirty.into_iter().collect(),
        remote,
    })
}

/// Phase 2 (per tuple): every one-step derivation filling the primary key
/// an over-deleted tuple vacated, from the current (post-removal) store,
/// as insertion deltas.
///
/// Re-derivation is keyed, not tuple-exact, because P2's key-update
/// semantics make the *key* the unit of materialization: when the stored
/// winner of a key dies, the key's surviving derivations — possibly a
/// different tuple value that an earlier replacement folded away — must be
/// restored. For a keyless relation the key is the whole tuple, and this
/// degenerates to exact re-derivation. A key still occupied (the deletion
/// was the old half of a replacement) is left alone: the new tuple won it.
///
/// For each rule deriving the tuple's relation (one strand per rule
/// suffices — every derivation of a rule is reproduced by firing any one
/// of its strands with each stored trigger tuple), the head's key columns
/// are bound to the vacated key; rules whose constant head columns or
/// repeated head variables cannot produce it are skipped. The bound key
/// pins the trigger columns recorded by the planner
/// ([`CompiledStrand::rederive_requirement`]), so candidate triggers come
/// from an index probe when any column is pinned, and only derivations
/// landing in the vacated key are kept.
///
/// Derivations restored further downstream are *not* this function's job:
/// the caller ingests the returned insertions through the normal pipelined
/// path, whose cascade re-derives any remaining over-deleted survivors.
pub fn rederive_inserts(
    store: &Store,
    strands: &[CompiledStrand],
    deleted: &TupleDelta,
    stats: &mut JoinStats,
) -> Result<Vec<TupleDelta>, EvalError> {
    let Some(relation) = store.relation(&deleted.relation) else {
        return Ok(Vec::new());
    };
    let schema = relation.schema();
    let key = schema.key_of(&deleted.tuple);
    if relation.get(&key).is_some() {
        // The key is already occupied (the deletion was the old half of a
        // replacement, or an earlier candidate refilled it): nothing to
        // restore.
        return Ok(Vec::new());
    }
    let key_cols = crate::store::effective_key_columns(Some(relation), deleted.tuple.arity());
    let mut out = Vec::new();
    let mut rules_seen: BTreeSet<&str> = BTreeSet::new();
    for strand in strands {
        if strand.head_relation() != deleted.relation || !rules_seen.insert(strand.rule_label()) {
            continue;
        }
        let rule = &strand.delta_rule().rule;
        let Some(Literal::Atom(trigger_atom)) = rule.body.get(strand.delta_rule().trigger) else {
            continue;
        };
        // Bind the head's key columns to the vacated key; constant
        // mismatches and conflicting repeated variables rule the rule out.
        let mut bound_vars: BTreeMap<&str, &Value> = BTreeMap::new();
        let mut feasible = true;
        for (pos, &col) in key_cols.iter().enumerate() {
            let value = &key[pos];
            match rule.head.args.get(col) {
                Some(Term::Const(c)) if c != value => {
                    feasible = false;
                    break;
                }
                Some(Term::Var(v)) => match bound_vars.get(v.name.as_str()) {
                    Some(existing) if *existing != value => {
                        feasible = false;
                        break;
                    }
                    _ => {
                        bound_vars.insert(v.name.as_str(), value);
                    }
                },
                _ => {}
            }
        }
        if !feasible {
            continue;
        }
        let Some(trigger_relation) = store.relation(strand.trigger_relation()) else {
            continue;
        };
        // The pinned trigger columns come from the same planner metadata
        // the store used to declare the re-derivation index, so the probed
        // signature always matches a declared one.
        let cols = strand
            .rederive_requirement(&key_cols)
            .map(|(_, cols)| cols)
            .unwrap_or_default();
        let vals: Vec<Value> = cols
            .iter()
            .filter_map(|&col| match trigger_atom.args.get(col) {
                Some(Term::Var(v)) => bound_vars.get(v.name.as_str()).map(|&val| val.clone()),
                _ => None,
            })
            .collect();
        debug_assert_eq!(
            cols.len(),
            vals.len(),
            "pinned columns are key-var trigger columns"
        );
        let candidates: Vec<Tuple> = trigger_relation
            .lookup(&cols, &vals, u64::MAX, stats)
            .map(|s| s.tuple.clone())
            .collect();
        for tuple in candidates {
            let trigger = TupleDelta::insert(strand.trigger_relation().to_string(), tuple);
            for derivation in strand.fire_counted(store, &trigger, u64::MAX, stats)? {
                if schema.key_of(&derivation.delta.tuple) == key {
                    out.push(derivation.delta);
                }
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ndlog_lang::seminaive::delta_rewrite_full;
    use ndlog_lang::{parse_program, Value};

    fn addr(i: u32) -> Value {
        Value::addr(i)
    }

    fn setup(src: &str) -> (Store, Vec<CompiledStrand>) {
        let program = parse_program(src).unwrap();
        let mut store = Store::for_program(&program);
        let strands: Vec<CompiledStrand> = delta_rewrite_full(&program)
            .into_iter()
            .map(CompiledStrand::new)
            .collect();
        store.declare_indexes(strands.iter());
        (store, strands)
    }

    const REACH: &str = r#"
        rc1 reach(@S,@D) :- edge(@S,@D).
        rc2 reach(@S,@D) :- edge(@S,@Z), reach(@Z,@D).
    "#;

    fn edge(a: u32, b: u32) -> Tuple {
        Tuple::new(vec![addr(a), addr(b)])
    }

    #[test]
    fn over_delete_marks_the_downstream_closure() {
        let (mut store, strands) = setup(REACH);
        for (a, b) in [(0u32, 1u32), (1, 2)] {
            store.apply(&TupleDelta::insert("edge", edge(a, b)));
        }
        for (a, b) in [(0u32, 1u32), (1, 2), (0, 2)] {
            store.apply(&TupleDelta::insert("reach", edge(a, b)));
        }
        // Remove edge(1,2) as the caller (store.apply) would, then run the
        // closure from it.
        store.apply(&TupleDelta::delete("edge", edge(1, 2)));
        let mut stats = JoinStats::default();
        let marking = over_delete(
            &mut store,
            &strands,
            &[],
            vec![TupleDelta::delete("edge", edge(1, 2))],
            None,
            &mut stats,
        )
        .unwrap();
        let marked: BTreeSet<(String, Tuple)> = marking
            .rederive_candidates()
            .iter()
            .map(|d| (d.relation.clone(), d.tuple.clone()))
            .collect();
        assert!(marked.contains(&("reach".to_string(), edge(1, 2))));
        assert!(marked.contains(&("reach".to_string(), edge(0, 2))));
        assert!(!marked.contains(&("reach".to_string(), edge(0, 1))));
        // Marked tuples are gone from the store, counts notwithstanding.
        assert!(!store.relation("reach").unwrap().contains(&edge(1, 2)));
        assert!(!store.relation("reach").unwrap().contains(&edge(0, 2)));
        assert!(store.relation("reach").unwrap().contains(&edge(0, 1)));
    }

    #[test]
    fn over_delete_ignores_inflated_counts() {
        let (mut store, strands) = setup(REACH);
        store.apply(&TupleDelta::insert("edge", edge(0, 1)));
        // Simulate an SN/BSN over-count: two derivations recorded for the
        // same reach tuple.
        store.apply(&TupleDelta::insert("reach", edge(0, 1)));
        store.apply(&TupleDelta::insert("reach", edge(0, 1)));
        store.apply(&TupleDelta::delete("edge", edge(0, 1)));
        let mut stats = JoinStats::default();
        let marking = over_delete(
            &mut store,
            &strands,
            &[],
            vec![TupleDelta::delete("edge", edge(0, 1))],
            None,
            &mut stats,
        )
        .unwrap();
        assert_eq!(marking.rederive_candidates().len(), 1);
        assert!(
            store.relation("reach").unwrap().is_empty(),
            "count 2 must not protect an underivable tuple"
        );
    }

    #[test]
    fn batched_seeds_stay_visible_as_join_partners() {
        // reach(0,2) is jointly supported by the two seeds of one batch:
        // edge(0,1) on the trigger side of rc2 and reach(1,2) on the
        // partner side (the shape of one epoch delivering a local link
        // deletion alongside a shipped retraction). Both seeds are already
        // removed when the pass starts, so the closure must restore them
        // for its duration or neither firing finds the other and the
        // jointly-supported tuple survives unretracted.
        let (mut store, strands) = setup(REACH);
        store.apply(&TupleDelta::insert("edge", edge(0, 1)));
        for (a, b) in [(0u32, 1u32), (1, 2), (0, 2)] {
            store.apply(&TupleDelta::insert("reach", edge(a, b)));
        }
        store.apply(&TupleDelta::delete("edge", edge(0, 1)));
        store.apply(&TupleDelta::delete("reach", edge(1, 2)));
        let mut stats = JoinStats::default();
        over_delete(
            &mut store,
            &strands,
            &[],
            vec![
                TupleDelta::delete("edge", edge(0, 1)),
                TupleDelta::delete("reach", edge(1, 2)),
            ],
            None,
            &mut stats,
        )
        .unwrap();
        assert!(
            !store.relation("reach").unwrap().contains(&edge(0, 2)),
            "the jointly-supported tuple must be over-deleted"
        );
        assert!(
            !store.relation("edge").unwrap().contains(&edge(0, 1)),
            "temporarily restored seeds must leave the store again"
        );
        assert!(!store.relation("reach").unwrap().contains(&edge(1, 2)));
    }

    #[test]
    fn rederive_restores_alternatively_supported_tuples() {
        let (mut store, strands) = setup(REACH);
        // Two independent supports for reach(0,2): edge(0,2) directly and
        // edge(0,1) + reach(1,2).
        for (a, b) in [(0u32, 2u32), (0, 1), (1, 2)] {
            store.apply(&TupleDelta::insert("edge", edge(a, b)));
        }
        store.apply(&TupleDelta::insert("reach", edge(1, 2)));
        let deleted = TupleDelta::delete("reach", edge(0, 2));
        let mut stats = JoinStats::default();
        let inserts = rederive_inserts(&store, &strands, &deleted, &mut stats).unwrap();
        // rc1 re-derives it from edge(0,2); rc2 from edge(0,1) + reach(1,2).
        assert_eq!(inserts.len(), 2);
        assert!(inserts
            .iter()
            .all(|d| d.relation == "reach" && d.tuple == edge(0, 2)));
    }

    #[test]
    fn rederive_finds_nothing_for_unsupported_tuples() {
        let (store, strands) = setup(REACH);
        let deleted = TupleDelta::delete("reach", edge(3, 4));
        let mut stats = JoinStats::default();
        let inserts = rederive_inserts(&store, &strands, &deleted, &mut stats).unwrap();
        assert!(inserts.is_empty());
    }

    #[test]
    fn rederive_skips_infeasible_rules() {
        // A rule with a constant head column can only produce matching
        // tuples.
        let (mut store, strands) = setup("r1 out(@S, 7) :- q(@S).");
        store.apply(&TupleDelta::insert("q", Tuple::new(vec![addr(0)])));
        let mut stats = JoinStats::default();
        let hit = TupleDelta::delete("out", Tuple::new(vec![addr(0), Value::Int(7)]));
        assert_eq!(
            rederive_inserts(&store, &strands, &hit, &mut stats)
                .unwrap()
                .len(),
            1
        );
        let miss = TupleDelta::delete("out", Tuple::new(vec![addr(0), Value::Int(8)]));
        assert!(rederive_inserts(&store, &strands, &miss, &mut stats)
            .unwrap()
            .is_empty());
    }
}
