//! A node's table store: the collection of relations a (localized) NDlog
//! program reads and writes at one network node.

use crate::relation::{DeleteOutcome, InsertOutcome, Relation, RelationSchema};
use crate::tuple::{Sign, Tuple, TupleDelta};
use ndlog_lang::Program;
use std::collections::BTreeMap;

/// A collection of named relations plus the node-local timestamp counter
/// used by pipelined semi-naive evaluation.
#[derive(Debug, Clone, Default)]
pub struct Store {
    relations: BTreeMap<String, Relation>,
    next_seq: u64,
    now_micros: u64,
}

/// The effect of applying a delta to the store: the deltas that should be
/// propagated further (possibly empty), plus the timestamp assigned to the
/// applied tuple (used as the join visibility limit when firing strands).
#[derive(Debug, Clone, PartialEq)]
pub struct ApplyEffect {
    /// Deltas to propagate (e.g. a primary-key replacement propagates a
    /// deletion of the old tuple and an insertion of the new one).
    pub propagate: Vec<TupleDelta>,
    /// The timestamp of the applied tuple.
    pub seq: u64,
}

impl Store {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Build a store with a relation for every table declaration and every
    /// relation mentioned by the program (derived relations default to
    /// all-columns primary keys).
    pub fn for_program(program: &Program) -> Self {
        let mut store = Store::new();
        store.add_program(program);
        store
    }

    /// Add the relations of a program to an existing store (used when one
    /// node runs several concurrent queries). Existing relations keep their
    /// schemas.
    pub fn add_program(&mut self, program: &Program) {
        for decl in &program.tables {
            if self.relations.contains_key(&decl.name) {
                continue;
            }
            let mut schema =
                RelationSchema::new(decl.name.clone()).with_keys(decl.key_columns.clone());
            if let Some(ttl) = decl.ttl_seconds {
                schema = schema.with_ttl_seconds(ttl);
            }
            self.ensure(schema);
        }
        let mut names: Vec<String> = Vec::new();
        for rule in &program.rules {
            names.push(rule.head.name.clone());
            for a in rule.body_atoms() {
                names.push(a.name.clone());
            }
        }
        for name in names {
            if !self.relations.contains_key(&name) {
                self.ensure(RelationSchema::new(name));
            }
        }
    }

    /// Ensure a relation with the given schema exists (no-op if present).
    pub fn ensure(&mut self, schema: RelationSchema) -> &mut Relation {
        self.relations
            .entry(schema.name.clone())
            .or_insert_with(|| Relation::new(schema))
    }

    /// Declare a secondary index on a relation (creating the relation with
    /// a default schema if needed). Called once per program with every
    /// bound-column signature the compiled strands probe, so the indexes
    /// exist before any tuple arrives and are maintained incrementally
    /// from then on.
    pub fn declare_index(&mut self, relation: &str, cols: &[usize]) {
        self.ensure(RelationSchema::new(relation))
            .ensure_index(cols);
    }

    /// Declare every index a set of compiled strands requires: the join
    /// probe plans' signatures, plus the trigger-side signatures that DRed
    /// re-derivation probes when it pins a strand's head to an
    /// over-deleted tuple's primary key (see
    /// [`crate::dred::rederive_inserts`]). A keyless head relation is
    /// keyed on all of its columns, so its requirement binds every
    /// head-mentioned trigger column.
    pub fn declare_indexes<'a>(
        &mut self,
        strands: impl IntoIterator<Item = &'a crate::strand::CompiledStrand>,
    ) {
        for strand in strands {
            for (relation, cols) in strand.index_requirements() {
                self.declare_index(&relation, &cols);
            }
            let key_cols = effective_key_columns(
                self.relation(strand.head_relation()),
                strand.delta_rule().rule.head.arity(),
            );
            if let Some((relation, cols)) = strand.rederive_requirement(&key_cols) {
                self.declare_index(&relation, &cols);
            }
        }
    }

    /// The relation with this name, if any.
    pub fn relation(&self, name: &str) -> Option<&Relation> {
        self.relations.get(name)
    }

    /// Mutable access to a relation.
    pub fn relation_mut(&mut self, name: &str) -> Option<&mut Relation> {
        self.relations.get_mut(name)
    }

    /// Names of all relations, in sorted order.
    pub fn relation_names(&self) -> impl Iterator<Item = &str> {
        self.relations.keys().map(String::as_str)
    }

    /// Total number of stored tuples across relations.
    pub fn total_tuples(&self) -> usize {
        self.relations.values().map(Relation::len).sum()
    }

    /// Current logical time (microseconds), used for soft-state expiry.
    pub fn now_micros(&self) -> u64 {
        self.now_micros
    }

    /// Advance the store's logical clock (monotonic).
    pub fn set_time(&mut self, now_micros: u64) {
        self.now_micros = self.now_micros.max(now_micros);
    }

    /// The most recently assigned timestamp.
    pub fn current_seq(&self) -> u64 {
        self.next_seq
    }

    fn fresh_seq(&mut self) -> u64 {
        self.next_seq += 1;
        self.next_seq
    }

    /// Apply a signed delta to the store, creating the relation on demand.
    ///
    /// Returns the deltas to propagate further (empty for duplicate
    /// derivations and stale deletions — that is how the count algorithm
    /// suppresses redundant downstream work) plus the timestamp to use as
    /// the join visibility limit when firing strands off this delta.
    pub fn apply(&mut self, delta: &TupleDelta) -> ApplyEffect {
        let now = self.now_micros;
        let seq = self.fresh_seq();
        let relation = self
            .relations
            .entry(delta.relation.clone())
            .or_insert_with(|| Relation::new(RelationSchema::new(delta.relation.clone())));
        match delta.sign {
            Sign::Insert => match relation.insert(delta.tuple.clone(), seq, now) {
                InsertOutcome::New => ApplyEffect {
                    propagate: vec![delta.clone()],
                    seq,
                },
                InsertOutcome::Duplicate => ApplyEffect {
                    propagate: Vec::new(),
                    seq,
                },
                InsertOutcome::Replaced(old) => ApplyEffect {
                    propagate: vec![
                        TupleDelta::delete(delta.relation.clone(), old),
                        delta.clone(),
                    ],
                    seq,
                },
            },
            Sign::Delete => match relation.delete(&delta.tuple) {
                DeleteOutcome::Removed => ApplyEffect {
                    propagate: vec![delta.clone()],
                    seq,
                },
                DeleteOutcome::Decremented | DeleteOutcome::NotFound => ApplyEffect {
                    propagate: Vec::new(),
                    seq,
                },
            },
        }
    }

    /// Expire soft-state tuples across all relations, returning the
    /// corresponding deletion deltas (to be propagated like any other
    /// deletion).
    pub fn expire(&mut self, now_micros: u64) -> Vec<TupleDelta> {
        self.set_time(now_micros);
        let mut out = Vec::new();
        for (name, rel) in &mut self.relations {
            for tuple in rel.expire(now_micros) {
                out.push(TupleDelta::delete(name.clone(), tuple));
            }
        }
        out
    }

    /// Drop every stored tuple while keeping relation schemas, declared
    /// indexes, the timestamp counter and the logical clock. This is the
    /// store half of a node crash: volatile state is lost, but the node
    /// restarts with the same program (schemas + indexes) and its sequence
    /// numbers keep advancing so rejoin-era tuples sort after crash-era
    /// ones.
    pub fn clear_tuples(&mut self) {
        for rel in self.relations.values_mut() {
            let schema = rel.schema().clone();
            let signatures: Vec<Vec<usize>> = rel
                .index_signatures()
                .map(|sig| sig.columns().to_vec())
                .collect();
            let mut fresh = Relation::new(schema);
            for cols in &signatures {
                fresh.ensure_index(cols);
            }
            *rel = fresh;
        }
    }

    /// All tuples of a relation (empty if the relation does not exist),
    /// in deterministic key order.
    pub fn tuples(&self, relation: &str) -> Vec<Tuple> {
        self.relations
            .get(relation)
            .map(|r| r.iter().map(|s| s.tuple.clone()).collect())
            .unwrap_or_default()
    }

    /// Number of tuples in a relation (0 if absent).
    pub fn count(&self, relation: &str) -> usize {
        self.relations.get(relation).map_or(0, Relation::len)
    }
}

/// The columns an over-deleted tuple's primary key binds: the declared key
/// columns, or every column when the relation is keyed on all attributes
/// (or does not exist yet at declaration time).
pub(crate) fn effective_key_columns(relation: Option<&Relation>, arity: usize) -> Vec<usize> {
    match relation {
        Some(r) if !r.schema().key_columns.is_empty() => r.schema().key_columns.clone(),
        _ => (0..arity).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ndlog_lang::{programs, Value};

    fn t(vals: &[i64]) -> Tuple {
        Tuple::new(vals.iter().map(|&v| Value::Int(v)).collect())
    }

    #[test]
    fn for_program_creates_all_relations() {
        let p = programs::shortest_path("");
        let store = Store::for_program(&p);
        for name in ["link", "path", "spCost", "shortestPath"] {
            assert!(store.relation(name).is_some(), "missing {name}");
        }
        // Declared keys are honoured.
        assert_eq!(
            store.relation("path").unwrap().schema().key_columns,
            vec![0, 1, 3]
        );
    }

    #[test]
    fn apply_insert_then_duplicate_then_delete() {
        let mut store = Store::new();
        let d = TupleDelta::insert("r", t(&[1, 2]));
        let e1 = store.apply(&d);
        assert_eq!(e1.propagate, vec![d.clone()]);
        let e2 = store.apply(&d);
        assert!(e2.propagate.is_empty(), "duplicate derivation is absorbed");
        assert!(e2.seq > e1.seq);

        let del = TupleDelta::delete("r", t(&[1, 2]));
        let e3 = store.apply(&del);
        assert!(e3.propagate.is_empty(), "count drops from 2 to 1");
        let e4 = store.apply(&del);
        assert_eq!(e4.propagate, vec![del.clone()]);
        assert_eq!(store.count("r"), 0);
    }

    #[test]
    fn apply_replacement_emits_delete_and_insert() {
        let mut store = Store::new();
        store.ensure(RelationSchema::new("best").with_keys(vec![0]));
        store.apply(&TupleDelta::insert("best", t(&[1, 10])));
        let effect = store.apply(&TupleDelta::insert("best", t(&[1, 5])));
        assert_eq!(effect.propagate.len(), 2);
        assert_eq!(effect.propagate[0], TupleDelta::delete("best", t(&[1, 10])));
        assert_eq!(effect.propagate[1], TupleDelta::insert("best", t(&[1, 5])));
        assert_eq!(store.tuples("best"), vec![t(&[1, 5])]);
    }

    #[test]
    fn deleting_missing_tuple_is_silent() {
        let mut store = Store::new();
        let e = store.apply(&TupleDelta::delete("r", t(&[9])));
        assert!(e.propagate.is_empty());
    }

    #[test]
    fn expiry_produces_deletion_deltas() {
        let mut store = Store::new();
        store.ensure(RelationSchema::new("soft").with_ttl_seconds(1.0));
        store.apply(&TupleDelta::insert("soft", t(&[1])));
        store.apply(&TupleDelta::insert("hard", t(&[2])));
        let deltas = store.expire(2_000_000);
        assert_eq!(deltas, vec![TupleDelta::delete("soft", t(&[1]))]);
        assert_eq!(store.count("soft"), 0);
        assert_eq!(store.count("hard"), 1);
    }

    #[test]
    fn clock_is_monotonic() {
        let mut store = Store::new();
        store.set_time(100);
        store.set_time(50);
        assert_eq!(store.now_micros(), 100);
    }

    #[test]
    fn relation_names_sorted() {
        let mut store = Store::new();
        store.ensure(RelationSchema::new("zeta"));
        store.ensure(RelationSchema::new("alpha"));
        let names: Vec<_> = store.relation_names().collect();
        assert_eq!(names, vec!["alpha", "zeta"]);
        assert_eq!(store.total_tuples(), 0);
    }
}
