//! Stored relations: primary keys, derivation counts, timestamps and
//! soft-state lifetimes.
//!
//! Each relation follows the paper's data model (Section 2): it has a
//! primary key (defaulting to the full set of attributes) and stores one
//! tuple per key. Three pieces of bookkeeping ride along with each tuple:
//!
//! * a **derivation count** — the count algorithm of Gupta et al. used for
//!   incremental deletions (Section 4): duplicate derivations increment the
//!   count, deletions decrement it, and the tuple disappears only when the
//!   count reaches zero;
//! * a **timestamp** (local sequence number) — assigned on first insertion
//!   and used by pipelined semi-naive joins to match only "same or older"
//!   tuples (Section 3.3.2), which prevents repeated inferences;
//! * an optional **expiry time** for soft-state tables (Section 4.2):
//!   tuples must be refreshed before their TTL elapses or they are deleted.
//!
//! Relations additionally maintain **secondary hash indexes** (declared
//! once per program from the compiled strands' bound-column signatures, see
//! [`crate::index`]): every mutation — insertion, key replacement, deletion,
//! expiry — updates the indexes incrementally, and
//! [`Relation::probe`] answers an equality lookup in O(matches) instead of
//! the O(|relation|) of [`Relation::scan_match`]. When several declared
//! signatures can serve a lookup, [`Relation::lookup`] makes a cost-based
//! choice: the candidate binding the most columns wins, with the smallest
//! bucket estimate breaking ties and signature order breaking exact ties
//! (so the choice never depends on index declaration order), and any
//! leftover bound columns enforced residually. Buckets are columnar (see
//! [`crate::index`]): visibility and residual filtering walk dense
//! seq/`ValueId` arrays, and only surviving candidates pay the primary-key
//! map lookup that materializes the stored tuple. [`Relation::lookup_n`]
//! is the grouped-probe entry point: one bucket lookup answers `members`
//! same-key environments, with the per-environment (`logical`) accounting
//! preserved via a multiplier.

use crate::index::{Bucket, IndexSignature, JoinStats, SecondaryIndex};
use crate::intern::{self, ValueId};
use crate::tuple::Tuple;
use ndlog_lang::Value;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Schema of a stored relation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RelationSchema {
    /// Relation name.
    pub name: String,
    /// Primary-key column indexes; empty means "all columns".
    pub key_columns: Vec<usize>,
    /// Soft-state TTL in microseconds; `None` = hard state.
    pub ttl_micros: Option<u64>,
}

impl RelationSchema {
    /// A hard-state relation keyed on all columns.
    pub fn new(name: impl Into<String>) -> Self {
        RelationSchema {
            name: name.into(),
            key_columns: Vec::new(),
            ttl_micros: None,
        }
    }

    /// Set the primary-key columns.
    pub fn with_keys(mut self, keys: Vec<usize>) -> Self {
        self.key_columns = keys;
        self
    }

    /// Set a soft-state TTL (seconds).
    pub fn with_ttl_seconds(mut self, seconds: f64) -> Self {
        self.ttl_micros = Some((seconds * 1_000_000.0) as u64);
        self
    }

    /// The primary key of a tuple under this schema.
    pub fn key_of(&self, tuple: &Tuple) -> Vec<Value> {
        if self.key_columns.is_empty() {
            tuple.values().to_vec()
        } else {
            tuple.project(&self.key_columns)
        }
    }
}

/// A stored tuple with its bookkeeping.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StoredTuple {
    /// The tuple itself.
    pub tuple: Tuple,
    /// Number of outstanding derivations (count algorithm).
    pub count: u64,
    /// Local timestamp: the store-wide sequence number assigned when the
    /// tuple was first inserted.
    pub seq: u64,
    /// Absolute expiry time in microseconds (soft state only).
    pub expires_at: Option<u64>,
}

/// Result of inserting a tuple.
#[derive(Debug, Clone, PartialEq)]
pub enum InsertOutcome {
    /// The tuple is new: propagate an insertion delta.
    New,
    /// An identical tuple already exists: its derivation count was
    /// incremented, nothing to propagate.
    Duplicate,
    /// A different tuple with the same primary key existed and was
    /// replaced (P2's key-update semantics): propagate a deletion of the
    /// returned old tuple and an insertion of the new one.
    Replaced(Tuple),
}

/// Result of deleting a tuple.
#[derive(Debug, Clone, PartialEq)]
pub enum DeleteOutcome {
    /// The last derivation was removed: propagate a deletion delta.
    Removed,
    /// Other derivations remain; nothing to propagate.
    Decremented,
    /// No matching tuple was stored (or the stored tuple differs).
    NotFound,
}

/// A stored relation.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Relation {
    schema: RelationSchema,
    tuples: BTreeMap<Vec<Value>, StoredTuple>,
    /// Secondary indexes, one per declared bound-column signature.
    /// Derivable state: skipped by serialization; the engine re-declares
    /// every signature at construction time.
    #[serde(skip)]
    indexes: Vec<SecondaryIndex>,
    /// Reusable scratch for the index write path: each stored tuple's
    /// columns are interned once here and the ids shared by every index.
    #[serde(skip)]
    id_scratch: Vec<ValueId>,
    /// Derivation counts folded away by primary-key replacements. While
    /// this is zero the count algorithm is exact for tuples of this
    /// relation; once it is positive a count-trusting deletion could leave
    /// a key underivable even though alternative derivations exist. The
    /// engines no longer trust counts on the deletion path at all — every
    /// actual removal runs a DRed over-delete/re-derive pass (see
    /// `ndlog_runtime::dred`) — so this counter survives purely as
    /// diagnostics for count-exactness assertions in tests.
    lossy_replacements: u64,
}

impl Relation {
    /// Create an empty relation.
    pub fn new(schema: RelationSchema) -> Self {
        Relation {
            schema,
            tuples: BTreeMap::new(),
            indexes: Vec::new(),
            id_scratch: Vec::new(),
            lossy_replacements: 0,
        }
    }

    /// The relation's schema.
    pub fn schema(&self) -> &RelationSchema {
        &self.schema
    }

    /// Number of stored tuples.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// Whether the relation is empty.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// Whether an identical tuple is stored.
    pub fn contains(&self, tuple: &Tuple) -> bool {
        self.tuples
            .get(&self.schema.key_of(tuple))
            .is_some_and(|s| &s.tuple == tuple)
    }

    /// The stored tuple with the same primary key as `tuple`, if any.
    pub fn get_by_key_of(&self, tuple: &Tuple) -> Option<&StoredTuple> {
        self.tuples.get(&self.schema.key_of(tuple))
    }

    /// Look up by an explicit key.
    pub fn get(&self, key: &[Value]) -> Option<&StoredTuple> {
        self.tuples.get(key)
    }

    /// Iterate over stored tuples in key order (deterministic).
    pub fn iter(&self) -> impl Iterator<Item = &StoredTuple> {
        self.tuples.values()
    }

    /// Iterate over tuples matching equality constraints on the given
    /// columns, visible at or before `seq_limit`.
    ///
    /// This is the residual full-scan path; joins with bound columns should
    /// go through [`Relation::probe`] instead.
    pub fn scan_match<'r, 'b>(
        &'r self,
        bound: &'b [(usize, Value)],
        seq_limit: u64,
    ) -> impl Iterator<Item = &'r StoredTuple> + use<'r, 'b> {
        self.tuples.values().filter(move |s| {
            s.seq <= seq_limit
                && bound
                    .iter()
                    .all(|(col, val)| s.tuple.get(*col) == Some(val))
        })
    }

    /// Ensure a secondary index exists for the given bound-column
    /// signature, backfilling it from the stored tuples. Returns true if a
    /// new index was built. Empty signatures (no bound columns) and
    /// duplicates are ignored.
    pub fn ensure_index(&mut self, cols: &[usize]) -> bool {
        let signature = IndexSignature::new(cols);
        if signature.is_empty() || self.indexes.iter().any(|i| i.signature() == &signature) {
            return false;
        }
        let mut index = SecondaryIndex::new(signature);
        for (key, stored) in &self.tuples {
            intern::intern_all_into(stored.tuple.values(), &mut self.id_scratch);
            index.add(&self.id_scratch, key.as_slice().into(), stored.seq);
        }
        self.indexes.push(index);
        true
    }

    /// The bound-column signatures this relation is indexed on.
    pub fn index_signatures(&self) -> impl Iterator<Item = &IndexSignature> {
        self.indexes.iter().map(SecondaryIndex::signature)
    }

    /// Live statistics for every secondary index:
    /// `(signature, distinct keys, indexed entries)`. Distinct keys is the
    /// bucket count — the number of different probe-key values currently
    /// stored — so `entries / distinct` is the average matches per probe,
    /// the quantity cost-based join ordering ranks plans by.
    pub fn index_stats(&self) -> impl Iterator<Item = (&IndexSignature, usize, usize)> {
        self.indexes
            .iter()
            .map(|ix| (ix.signature(), ix.bucket_count(), ix.len()))
    }

    /// Probe the index on `cols` (which must be sorted and deduplicated,
    /// with `key` holding the bound values in the same order) for tuples
    /// visible at or before `seq_limit`, in deterministic primary-key
    /// order.
    ///
    /// Returns `None` when no index with that signature exists — the
    /// caller falls back to [`Relation::scan_match`].
    pub fn probe<'r, 'b>(
        &'r self,
        cols: &[usize],
        key: &'b [Value],
        seq_limit: u64,
    ) -> Option<impl Iterator<Item = &'r StoredTuple> + use<'r, 'b>> {
        debug_assert!(
            cols.windows(2).all(|w| w[0] < w[1]),
            "probe columns must be sorted"
        );
        let index = self
            .indexes
            .iter()
            .find(|i| i.signature().columns() == cols)?;
        Some(index.probe(key).filter_map(move |primary_key| {
            self.tuples
                .get(primary_key.as_ref())
                .filter(|s| s.seq <= seq_limit)
        }))
    }

    /// Choose the cheapest declared index that can serve an equality
    /// lookup on `cols`/`key`: among the indexes whose signature is a
    /// subset of the bound columns, pick the most selective one — most
    /// bound columns first, smallest bucket (estimated matches) as the
    /// tie-breaker. Returns the index together with the probe key
    /// projected onto its signature. Exact ties (same bound-column count
    /// *and* same bucket estimate) resolve by signature order — a property
    /// of the indexes themselves, never of the order they happened to be
    /// declared in — so the choice is deterministic across engines even
    /// when construction paths declare the same signatures differently.
    ///
    /// This runs once per join environment, so the common case — one
    /// finalist, usually an exact signature match — is kept allocation-
    /// light: losing candidates are rejected on signature length alone,
    /// and probe keys are projected (and bucket sizes hashed) only for the
    /// finalists with the longest covered signature.
    fn best_index(&self, cols: &[usize], key: &[Value]) -> Option<(&SecondaryIndex, Vec<Value>)> {
        // Pass 1 (no allocation): the longest covered signature length and
        // how many candidates reach it.
        let mut max_len = 0;
        let mut finalists = 0;
        for index in &self.indexes {
            let sig = index.signature();
            let len = sig.columns().len();
            if len < max_len || !sig.is_covered_by(cols) {
                continue;
            }
            if len > max_len {
                max_len = len;
                finalists = 1;
            } else {
                finalists += 1;
            }
        }
        if max_len == 0 {
            return None;
        }
        // Pass 2: project probe keys for the finalists only; with several,
        // the smallest bucket wins (signature order breaks exact ties).
        let mut best: Option<(&SecondaryIndex, Vec<Value>, usize)> = None;
        for index in &self.indexes {
            let sig = index.signature();
            if sig.columns().len() != max_len || !sig.is_covered_by(cols) {
                continue;
            }
            let subkey: Vec<Value> = sig
                .columns()
                .iter()
                .map(|c| {
                    let pos = cols.binary_search(c).expect("covered signature");
                    key[pos].clone()
                })
                .collect();
            if finalists == 1 {
                return Some((index, subkey));
            }
            let bucket = index.bucket_size(&subkey);
            match &best {
                Some((current, _, current_bucket))
                    if (*current_bucket, current.signature()) <= (bucket, sig) => {}
                _ => best = Some((index, subkey, bucket)),
            }
        }
        best.map(|(index, subkey, _)| (index, subkey))
    }

    /// The single access-path chooser behind every join: a *cost-based*
    /// choice among the declared indexes. Any index whose signature is a
    /// subset of `cols` (sorted, with `key` holding the bound values in
    /// the same order) can serve the lookup; the most selective candidate
    /// wins (most bound columns, then smallest bucket estimate, then
    /// signature order — see [`Relation::best_index`]), with the
    /// signature-leftover columns checked residually on each probed tuple.
    /// Only when no index covers any bound column does the lookup fall
    /// back to an equivalent residual scan — `cols` may be empty for a
    /// genuine cross product. The chosen path and the tuples examined are
    /// recorded in `stats` up front; iteration is lazy.
    pub fn lookup<'r, 'b>(
        &'r self,
        cols: &'b [usize],
        key: &'b [Value],
        seq_limit: u64,
        stats: &mut JoinStats,
    ) -> impl Iterator<Item = &'r StoredTuple> + use<'r, 'b> {
        self.lookup_n(cols, key, seq_limit, 1, stats)
    }

    /// [`Relation::lookup`] on behalf of `members` binding environments
    /// that share the same probe key — the storage half of key-grouped
    /// probe sharing ([`crate::batch`]). The bucket is looked up **once**
    /// (`distinct_probes += 1`) while the per-environment accounting is
    /// preserved via the multiplier (`logical_probes`/`scans` and
    /// `tuples_examined` grow by `members`× exactly as `members` separate
    /// [`Relation::lookup`] calls would), so grouped and ungrouped
    /// evaluation report identical logical counters.
    pub fn lookup_n<'r, 'b>(
        &'r self,
        cols: &'b [usize],
        key: &'b [Value],
        seq_limit: u64,
        members: usize,
        stats: &mut JoinStats,
    ) -> impl Iterator<Item = &'r StoredTuple> + use<'r, 'b> {
        debug_assert!(members >= 1, "a lookup serves at least one environment");
        let index = if cols.is_empty() {
            None
        } else {
            self.best_index(cols, key)
        };
        match index {
            Some((index, subkey)) => {
                let bucket = index.bucket(&subkey);
                stats.logical_probes += members;
                stats.distinct_probes += 1;
                stats.tuples_examined += bucket.map_or(0, Bucket::len) * members;
                // Bound columns the chosen signature does not cover are
                // enforced residually (empty for an exact-signature match).
                // The residual column set is projected once per lookup —
                // borrowing the caller's key values — never per candidate,
                // and compiled to dense id comparisons when the bucket is
                // columnar.
                let residual: Vec<(usize, &Value)> = cols
                    .iter()
                    .copied()
                    .zip(key.iter())
                    .filter(|(c, _)| !index.signature().columns().contains(c))
                    .collect();
                let (bucket, check) = compile_residual(bucket, residual);
                AccessPath::Probe(ProbeIter {
                    tuples: &self.tuples,
                    bucket,
                    pos: 0,
                    seq_limit,
                    check,
                })
            }
            None => {
                stats.scans += members;
                stats.tuples_examined += self.len() * members;
                let bound: Vec<(usize, &Value)> = cols.iter().copied().zip(key.iter()).collect();
                AccessPath::Scan(self.tuples.values().filter(move |s| {
                    s.seq <= seq_limit
                        && bound
                            .iter()
                            .all(|(col, val)| s.tuple.get(*col) == Some(val))
                }))
            }
        }
    }

    /// Existence variant of [`Relation::lookup`]: whether any tuple visible
    /// at or before `seq_limit` matches the equality constraints, via an
    /// index probe when the signature is declared.
    pub fn contains_match(&self, cols: &[usize], key: &[Value], seq_limit: u64) -> bool {
        self.lookup(cols, key, seq_limit, &mut JoinStats::default())
            .next()
            .is_some()
    }

    /// Derivation counts lost to primary-key replacements so far (see the
    /// field documentation).
    pub fn lossy_replacements(&self) -> u64 {
        self.lossy_replacements
    }

    /// Register a newly stored tuple in every index. The tuple's columns
    /// are interned once (into the reusable scratch) and the ids shared by
    /// every index's columnar bucket; the primary key is allocated as one
    /// shared `Arc` and reference-bumped per index.
    fn index_add(&mut self, key: &[Value], tuple: &Tuple, seq: u64) {
        if self.indexes.is_empty() {
            return;
        }
        let shared: Arc<[Value]> = key.into();
        intern::intern_all_into(tuple.values(), &mut self.id_scratch);
        for index in &mut self.indexes {
            index.add(&self.id_scratch, Arc::clone(&shared), seq);
        }
    }

    /// Remove a no-longer-stored tuple from every index.
    fn index_remove(&mut self, key: &[Value], tuple: &Tuple) {
        for index in &mut self.indexes {
            if let Some(projection) = project_checked(tuple, index.signature().columns()) {
                index.remove(&projection, key);
            }
        }
    }

    /// Insert a tuple (first derivation or an additional derivation).
    ///
    /// `seq` is the timestamp to assign if the tuple is new; `expires_at`
    /// the absolute expiry time for soft-state relations (ignored for hard
    /// state). Re-inserting an identical tuple refreshes its expiry —
    /// exactly the soft-state refresh behaviour of Section 4.2.
    pub fn insert(&mut self, tuple: Tuple, seq: u64, now_micros: u64) -> InsertOutcome {
        let key = self.schema.key_of(&tuple);
        let expires_at = self.schema.ttl_micros.map(|ttl| now_micros + ttl);
        // Single keyed lookup; tuple clones below are cheap (Arc bump).
        let replaced = match self.tuples.get_mut(&key) {
            Some(existing) if existing.tuple == tuple => {
                // Duplicate derivation: count bump and soft-state refresh,
                // indexes untouched.
                existing.count += 1;
                if expires_at.is_some() {
                    existing.expires_at = expires_at;
                }
                return InsertOutcome::Duplicate;
            }
            Some(existing) => {
                // Primary-key replacement, in place.
                self.lossy_replacements += existing.count;
                let old = std::mem::replace(&mut existing.tuple, tuple.clone());
                existing.count = 1;
                existing.seq = seq;
                existing.expires_at = expires_at;
                Some(old)
            }
            None => None,
        };
        match replaced {
            Some(old) => {
                self.index_remove(&key, &old);
                self.index_add(&key, &tuple, seq);
                InsertOutcome::Replaced(old)
            }
            None => {
                self.index_add(&key, &tuple, seq);
                self.tuples.insert(
                    key,
                    StoredTuple {
                        tuple,
                        count: 1,
                        seq,
                        expires_at,
                    },
                );
                InsertOutcome::New
            }
        }
    }

    /// Delete (one derivation of) a tuple.
    pub fn delete(&mut self, tuple: &Tuple) -> DeleteOutcome {
        let key = self.schema.key_of(tuple);
        let outcome = match self.tuples.get_mut(&key) {
            Some(existing) if &existing.tuple == tuple => {
                if existing.count > 1 {
                    existing.count -= 1;
                    DeleteOutcome::Decremented
                } else {
                    self.tuples.remove(&key);
                    DeleteOutcome::Removed
                }
            }
            _ => DeleteOutcome::NotFound,
        };
        if outcome == DeleteOutcome::Removed {
            self.index_remove(&key, tuple);
        }
        outcome
    }

    /// Remove a tuple outright regardless of its derivation count (used
    /// when a primary-key replacement cascades).
    pub fn remove(&mut self, tuple: &Tuple) -> bool {
        let key = self.schema.key_of(tuple);
        match self.tuples.get(&key) {
            Some(existing) if &existing.tuple == tuple => {
                self.tuples.remove(&key);
                self.index_remove(&key, tuple);
                true
            }
            _ => false,
        }
    }

    /// Remove all tuples whose soft-state lifetime has elapsed, returning
    /// them.
    pub fn expire(&mut self, now_micros: u64) -> Vec<Tuple> {
        let expired: Vec<Vec<Value>> = self
            .tuples
            .iter()
            .filter(|(_, s)| s.expires_at.is_some_and(|t| t <= now_micros))
            .map(|(k, _)| k.clone())
            .collect();
        let mut out = Vec::with_capacity(expired.len());
        for key in expired {
            if let Some(stored) = self.tuples.remove(&key) {
                self.index_remove(&key, &stored.tuple);
                out.push(stored.tuple);
            }
        }
        out
    }
}

/// Two-armed iterator behind [`Relation::lookup`]: an index probe or a
/// residual scan, chosen once per lookup.
enum AccessPath<'r, 'b, S> {
    Probe(ProbeIter<'r, 'b>),
    Scan(S),
}

impl<'r, 'b, S> Iterator for AccessPath<'r, 'b, S>
where
    S: Iterator<Item = &'r StoredTuple>,
{
    type Item = &'r StoredTuple;
    fn next(&mut self) -> Option<&'r StoredTuple> {
        match self {
            AccessPath::Probe(p) => p.next(),
            AccessPath::Scan(s) => s.next(),
        }
    }
}

/// How residual bound columns are enforced while walking a bucket.
enum Residual<'b> {
    /// Dense comparison against the bucket's columnar `ValueId` arrays.
    Ids(Vec<(usize, ValueId)>),
    /// Value comparison against the materialized tuple (degraded bucket).
    Values(Vec<(usize, &'b Value)>),
}

/// Compile the residual column set against the bucket's layout. Returns
/// `(None, _)` when no candidate can possibly match: a residual value that
/// was never interned cannot equal any value stored in a columnar bucket
/// (every stored column is interned on insert), and a residual column
/// beyond the bucket's uniform arity matches nothing either.
fn compile_residual<'r, 'b>(
    bucket: Option<&'r Bucket>,
    residual: Vec<(usize, &'b Value)>,
) -> (Option<&'r Bucket>, Residual<'b>) {
    match bucket {
        Some(b) if b.is_columnar() && !residual.is_empty() => {
            let mut ids = Vec::with_capacity(residual.len());
            for (c, v) in &residual {
                let resolved = if *c < b.arity() {
                    intern::lookup(v)
                } else {
                    None
                };
                match resolved {
                    Some(id) => ids.push((*c, id)),
                    None => return (None, Residual::Ids(Vec::new())),
                }
            }
            (Some(b), Residual::Ids(ids))
        }
        Some(b) if b.is_columnar() => (Some(b), Residual::Ids(Vec::new())),
        other => (other, Residual::Values(residual)),
    }
}

/// The probe arm of [`AccessPath`]: walk the bucket's dense seq/id arrays,
/// materializing (via the shared primary key) only the candidates that
/// survive visibility and residual filtering.
struct ProbeIter<'r, 'b> {
    tuples: &'r BTreeMap<Vec<Value>, StoredTuple>,
    bucket: Option<&'r Bucket>,
    pos: usize,
    seq_limit: u64,
    check: Residual<'b>,
}

impl<'r, 'b> Iterator for ProbeIter<'r, 'b> {
    type Item = &'r StoredTuple;
    fn next(&mut self) -> Option<&'r StoredTuple> {
        let bucket = self.bucket?;
        while self.pos < bucket.len() {
            let i = self.pos;
            self.pos += 1;
            if bucket.seq(i) > self.seq_limit {
                continue;
            }
            match &self.check {
                Residual::Ids(ids) => {
                    if ids
                        .iter()
                        .all(|&(c, id)| bucket.column(c).is_some_and(|col| col[i] == id))
                    {
                        if let Some(stored) = self.tuples.get(bucket.key(i).as_ref()) {
                            return Some(stored);
                        }
                    }
                }
                Residual::Values(vals) => {
                    if let Some(stored) = self.tuples.get(bucket.key(i).as_ref()) {
                        if vals.iter().all(|(c, v)| stored.tuple.get(*c) == Some(*v)) {
                            return Some(stored);
                        }
                    }
                }
            }
        }
        None
    }
}

/// Project a tuple onto index columns (borrowed — the values are already
/// interned, never cloned), returning `None` if any column is out of
/// range (possible when heterogeneous arities share a relation name in
/// hand-built test stores; such tuples simply stay unindexed and
/// unreachable by probes on that signature).
fn project_checked<'t>(tuple: &'t Tuple, cols: &[usize]) -> Option<Vec<&'t Value>> {
    cols.iter()
        .map(|&c| tuple.get(c))
        .collect::<Option<Vec<&Value>>>()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ndlog_lang::Value;

    fn t(vals: &[i64]) -> Tuple {
        Tuple::new(vals.iter().map(|&v| Value::Int(v)).collect())
    }

    fn keyed_relation() -> Relation {
        Relation::new(RelationSchema::new("r").with_keys(vec![0]))
    }

    #[test]
    fn insert_and_contains() {
        let mut r = keyed_relation();
        assert_eq!(r.insert(t(&[1, 10]), 1, 0), InsertOutcome::New);
        assert!(r.contains(&t(&[1, 10])));
        assert!(!r.contains(&t(&[1, 11])));
        assert_eq!(r.len(), 1);
        assert!(!r.is_empty());
    }

    #[test]
    fn duplicate_increments_count() {
        let mut r = keyed_relation();
        r.insert(t(&[1, 10]), 1, 0);
        assert_eq!(r.insert(t(&[1, 10]), 2, 0), InsertOutcome::Duplicate);
        let stored = r.get_by_key_of(&t(&[1, 10])).unwrap();
        assert_eq!(stored.count, 2);
        assert_eq!(
            stored.seq, 1,
            "timestamp keeps the first derivation's value"
        );
    }

    #[test]
    fn replacement_returns_old_tuple() {
        let mut r = keyed_relation();
        r.insert(t(&[1, 10]), 1, 0);
        match r.insert(t(&[1, 20]), 2, 0) {
            InsertOutcome::Replaced(old) => assert_eq!(old, t(&[1, 10])),
            other => panic!("expected replacement, got {other:?}"),
        }
        assert!(r.contains(&t(&[1, 20])));
        assert!(!r.contains(&t(&[1, 10])));
    }

    #[test]
    fn count_algorithm_deletion() {
        let mut r = keyed_relation();
        r.insert(t(&[1, 10]), 1, 0);
        r.insert(t(&[1, 10]), 2, 0);
        assert_eq!(r.delete(&t(&[1, 10])), DeleteOutcome::Decremented);
        assert!(r.contains(&t(&[1, 10])));
        assert_eq!(r.delete(&t(&[1, 10])), DeleteOutcome::Removed);
        assert!(!r.contains(&t(&[1, 10])));
        assert_eq!(r.delete(&t(&[1, 10])), DeleteOutcome::NotFound);
    }

    #[test]
    fn stale_deletion_is_ignored() {
        let mut r = keyed_relation();
        r.insert(t(&[1, 10]), 1, 0);
        // Deleting a tuple with the same key but a different value does not
        // affect the stored tuple.
        assert_eq!(r.delete(&t(&[1, 99])), DeleteOutcome::NotFound);
        assert!(r.contains(&t(&[1, 10])));
    }

    #[test]
    fn remove_ignores_count() {
        let mut r = keyed_relation();
        r.insert(t(&[1, 10]), 1, 0);
        r.insert(t(&[1, 10]), 2, 0);
        assert!(r.remove(&t(&[1, 10])));
        assert!(r.is_empty());
        assert!(!r.remove(&t(&[1, 10])));
    }

    #[test]
    fn overdelete_then_rederive_restores_counts_exactly_once() {
        // The count-accounting contract behind the DRed pass: `remove`
        // discards a tuple *and* its (possibly inflated or lossy)
        // derivation count, so a subsequent re-derivation re-inserts the
        // survivor with a fresh count of exactly 1 — restored once, not
        // once per stale count — and a single deletion then suffices to
        // retract it again.
        let mut r = keyed_relation();
        r.insert(t(&[1, 10]), 1, 0);
        r.insert(t(&[1, 10]), 2, 0); // an SN/BSN-style over-count
        assert_eq!(r.get_by_key_of(&t(&[1, 10])).unwrap().count, 2);
        // A replacement folds the old counts away entirely...
        assert_eq!(
            r.insert(t(&[1, 20]), 3, 0),
            InsertOutcome::Replaced(t(&[1, 10]))
        );
        assert_eq!(r.lossy_replacements(), 2);
        assert_eq!(r.get_by_key_of(&t(&[1, 20])).unwrap().count, 1);
        // ...and an over-delete removes outright, count notwithstanding.
        r.insert(t(&[1, 20]), 4, 0);
        assert!(r.remove(&t(&[1, 20])));
        assert!(r.get(&[Value::Int(1)]).is_none(), "key fully vacated");
        // The re-derive half restores the survivor exactly once.
        assert_eq!(r.insert(t(&[1, 10]), 5, 0), InsertOutcome::New);
        assert_eq!(r.get_by_key_of(&t(&[1, 10])).unwrap().count, 1);
        assert_eq!(r.delete(&t(&[1, 10])), DeleteOutcome::Removed);
        assert!(r.is_empty(), "one deletion retracts a once-restored tuple");
    }

    #[test]
    fn default_key_is_all_columns() {
        let mut r = Relation::new(RelationSchema::new("r"));
        r.insert(t(&[1, 10]), 1, 0);
        r.insert(t(&[1, 20]), 2, 0);
        assert_eq!(
            r.len(),
            2,
            "different tuples coexist without a declared key"
        );
    }

    #[test]
    fn scan_match_respects_bindings_and_seq() {
        let mut r = Relation::new(RelationSchema::new("r"));
        r.insert(t(&[1, 10]), 1, 0);
        r.insert(t(&[1, 20]), 2, 0);
        r.insert(t(&[2, 30]), 3, 0);
        let bound = vec![(0usize, Value::Int(1))];
        let hits: Vec<_> = r.scan_match(&bound, u64::MAX).collect();
        assert_eq!(hits.len(), 2);
        let hits: Vec<_> = r.scan_match(&bound, 1).collect();
        assert_eq!(hits.len(), 1, "seq limit hides newer tuples");
        let unbound: Vec<_> = r.scan_match(&[], u64::MAX).collect();
        assert_eq!(unbound.len(), 3);
    }

    #[test]
    fn soft_state_expiry_and_refresh() {
        let mut r = Relation::new(RelationSchema::new("r").with_ttl_seconds(1.0));
        r.insert(t(&[1, 10]), 1, 0);
        r.insert(t(&[2, 20]), 2, 500_000);
        // Refresh tuple 1 at t=800ms: its lifetime now extends to 1.8s.
        assert_eq!(r.insert(t(&[1, 10]), 3, 800_000), InsertOutcome::Duplicate);
        let expired = r.expire(1_200_000);
        assert!(expired.is_empty(), "both tuples are still alive");
        let expired = r.expire(1_600_000);
        assert_eq!(expired, vec![t(&[2, 20])], "unrefreshed tuple expires");
        assert!(r.contains(&t(&[1, 10])));
        let expired = r.expire(2_000_000);
        assert_eq!(expired.len(), 1);
        assert!(r.is_empty());
    }

    #[test]
    fn hard_state_never_expires() {
        let mut r = keyed_relation();
        r.insert(t(&[1, 10]), 1, 0);
        assert!(r.expire(u64::MAX).is_empty());
    }

    fn probed(r: &Relation, cols: &[usize], key: &[i64], seq_limit: u64) -> Vec<Tuple> {
        let key: Vec<Value> = key.iter().map(|&v| Value::Int(v)).collect();
        r.probe(cols, &key, seq_limit)
            .expect("index exists")
            .map(|s| s.tuple.clone())
            .collect()
    }

    #[test]
    fn index_probe_matches_scan() {
        let mut r = Relation::new(RelationSchema::new("r"));
        r.ensure_index(&[1]);
        for i in 0..10 {
            r.insert(t(&[i, i % 3]), i as u64 + 1, 0);
        }
        let bound = vec![(1usize, Value::Int(2))];
        let scanned: Vec<Tuple> = r
            .scan_match(&bound, u64::MAX)
            .map(|s| s.tuple.clone())
            .collect();
        assert_eq!(probed(&r, &[1], &[2], u64::MAX), scanned);
        assert_eq!(scanned.len(), 3);
        // Probes respect the PSN visibility limit like scans do.
        assert_eq!(probed(&r, &[1], &[2], 3).len(), 1);
        // Missing signature returns None so callers can fall back.
        assert!(r.probe(&[0], &[Value::Int(1)], u64::MAX).is_none());
    }

    #[test]
    fn index_backfills_existing_tuples() {
        let mut r = Relation::new(RelationSchema::new("r"));
        r.insert(t(&[1, 7]), 1, 0);
        r.insert(t(&[2, 7]), 2, 0);
        assert!(r.ensure_index(&[1]));
        assert!(!r.ensure_index(&[1]), "duplicate declaration is a no-op");
        assert!(
            !r.ensure_index(&[]),
            "empty signature is never materialized"
        );
        assert_eq!(probed(&r, &[1], &[7], u64::MAX).len(), 2);
        assert_eq!(r.index_signatures().count(), 1);
    }

    #[test]
    fn index_maintained_under_delete_and_count() {
        let mut r = Relation::new(RelationSchema::new("r"));
        r.ensure_index(&[0]);
        r.insert(t(&[1, 10]), 1, 0);
        r.insert(t(&[1, 10]), 2, 0); // count = 2
        r.delete(&t(&[1, 10]));
        assert_eq!(
            probed(&r, &[0], &[1], u64::MAX).len(),
            1,
            "decrement keeps the entry"
        );
        r.delete(&t(&[1, 10]));
        assert!(
            probed(&r, &[0], &[1], u64::MAX).is_empty(),
            "removal drops it"
        );
    }

    #[test]
    fn index_maintained_under_replacement() {
        let mut r = keyed_relation();
        r.ensure_index(&[1]);
        r.insert(t(&[1, 10]), 1, 0);
        assert_eq!(probed(&r, &[1], &[10], u64::MAX).len(), 1);
        r.insert(t(&[1, 20]), 2, 0); // replaces under key 1
        assert!(
            probed(&r, &[1], &[10], u64::MAX).is_empty(),
            "old projection entry is gone"
        );
        assert_eq!(probed(&r, &[1], &[20], u64::MAX), vec![t(&[1, 20])]);
        assert_eq!(r.lossy_replacements(), 1);
    }

    #[test]
    fn index_maintained_under_expiry_and_ttl_refresh() {
        let mut r = Relation::new(RelationSchema::new("r").with_ttl_seconds(1.0));
        r.ensure_index(&[0]);
        r.insert(t(&[1, 10]), 1, 0);
        r.insert(t(&[2, 20]), 2, 0);
        // Refresh tuple 1 at t=0.8s: the duplicate insert must not leave a
        // second (stale) index entry behind.
        r.insert(t(&[1, 10]), 3, 800_000);
        assert_eq!(probed(&r, &[0], &[1], u64::MAX).len(), 1);
        // Tuple 2 expires at 1.0s; its index entries must go with it.
        r.expire(1_500_000);
        assert!(
            probed(&r, &[0], &[2], u64::MAX).is_empty(),
            "no stale entry"
        );
        assert_eq!(
            probed(&r, &[0], &[1], u64::MAX).len(),
            1,
            "refreshed survives"
        );
        r.expire(2_000_000);
        assert!(probed(&r, &[0], &[1], u64::MAX).is_empty());
    }

    fn lookup_all(r: &Relation, cols: &[usize], key: &[i64], stats: &mut JoinStats) -> Vec<Tuple> {
        let key: Vec<Value> = key.iter().map(|&v| Value::Int(v)).collect();
        r.lookup(cols, &key, u64::MAX, stats)
            .map(|s| s.tuple.clone())
            .collect()
    }

    #[test]
    fn subset_index_serves_wider_bindings() {
        // Only [0] is indexed, but the lookup binds columns 0 and 1: the
        // access path must still be a probe (with column 1 checked
        // residually), not a full scan.
        let mut r = Relation::new(RelationSchema::new("r"));
        r.ensure_index(&[0]);
        for i in 0..20 {
            r.insert(t(&[i % 4, i % 2, i]), i as u64 + 1, 0);
        }
        let mut stats = JoinStats::default();
        let hits = lookup_all(&r, &[0, 1], &[1, 1], &mut stats);
        assert_eq!(stats.logical_probes, 1);
        assert_eq!(stats.distinct_probes, 1);
        assert_eq!(stats.scans, 0);
        assert_eq!(stats.tuples_examined, 5, "the [0]-bucket for value 1");
        let bound = vec![(0usize, Value::Int(1)), (1usize, Value::Int(1))];
        let scanned: Vec<Tuple> = r
            .scan_match(&bound, u64::MAX)
            .map(|s| s.tuple.clone())
            .collect();
        assert_eq!(hits, scanned, "residual filtering matches the scan");
        assert!(!hits.is_empty());
    }

    #[test]
    fn most_selective_candidate_wins() {
        // Two single-column candidates: column 0 is highly skewed (one big
        // bucket), column 1 is nearly unique. The cost-based choice must
        // probe the column-1 index — the smaller bucket.
        let mut r = Relation::new(RelationSchema::new("r"));
        r.ensure_index(&[0]);
        r.ensure_index(&[1]);
        for i in 0..50 {
            r.insert(t(&[0, i, i * 10]), i as u64 + 1, 0);
        }
        let mut stats = JoinStats::default();
        let hits = lookup_all(&r, &[0, 1], &[0, 7], &mut stats);
        assert_eq!(hits, vec![t(&[0, 7, 70])]);
        assert_eq!(stats.logical_probes, 1);
        assert_eq!(
            stats.tuples_examined, 1,
            "the unique column-1 bucket, not the 50-tuple column-0 bucket"
        );

        // And a composite index beats both single-column candidates.
        r.ensure_index(&[0, 1]);
        let mut stats = JoinStats::default();
        let hits = lookup_all(&r, &[0, 1], &[0, 7], &mut stats);
        assert_eq!(hits, vec![t(&[0, 7, 70])]);
        assert_eq!(stats.tuples_examined, 1);
    }

    #[test]
    fn unindexed_bound_columns_still_scan() {
        let mut r = Relation::new(RelationSchema::new("r"));
        r.ensure_index(&[2]);
        for i in 0..10 {
            r.insert(t(&[i, i, i]), i as u64 + 1, 0);
        }
        // The lookup binds only columns the index does not cover.
        let mut stats = JoinStats::default();
        let hits = lookup_all(&r, &[0], &[3], &mut stats);
        assert_eq!(hits, vec![t(&[3, 3, 3])]);
        assert_eq!(stats.scans, 1);
        assert_eq!(stats.logical_probes, 0);
        assert_eq!(stats.distinct_probes, 0);
    }

    #[test]
    fn tied_candidates_resolve_by_signature_order() {
        // Two single-column candidates with identical bucket estimates:
        // the tie must break on the signatures themselves ([0] < [1]), not
        // on declaration order, so every engine picks the same access path.
        let build = |first: usize, second: usize| {
            let mut r = Relation::new(RelationSchema::new("r"));
            r.ensure_index(&[first]);
            r.ensure_index(&[second]);
            for i in 0..12 {
                // Both columns split the relation into equal-size buckets.
                r.insert(t(&[i % 3, i % 3, i]), i as u64 + 1, 0);
            }
            r
        };
        let key = [Value::Int(1), Value::Int(1)];
        for r in [build(0, 1), build(1, 0)] {
            let (chosen, _) = r.best_index(&[0, 1], &key).expect("candidates exist");
            assert_eq!(
                chosen.signature().columns(),
                &[0],
                "exact ties resolve to the smaller signature"
            );
        }
    }

    #[test]
    fn lookup_n_shares_the_bucket_but_preserves_logical_accounting() {
        let mut r = Relation::new(RelationSchema::new("r"));
        r.ensure_index(&[0]);
        for i in 0..20 {
            r.insert(t(&[i % 4, i]), i as u64 + 1, 0);
        }
        let key = [Value::Int(1)];
        let mut grouped = JoinStats::default();
        let shared: Vec<Tuple> = r
            .lookup_n(&[0], &key, u64::MAX, 5, &mut grouped)
            .map(|s| s.tuple.clone())
            .collect();
        let mut single = JoinStats::default();
        for _ in 0..5 {
            let hits: Vec<Tuple> = r
                .lookup(&[0], &key, u64::MAX, &mut single)
                .map(|s| s.tuple.clone())
                .collect();
            assert_eq!(hits, shared, "shared bucket answers every member");
        }
        assert_eq!(grouped.logical_probes, single.logical_probes);
        assert_eq!(grouped.tuples_examined, single.tuples_examined);
        assert_eq!(grouped.scans, single.scans);
        assert_eq!(
            grouped.distinct_probes, 1,
            "one bucket lookup for 5 members"
        );
        assert_eq!(single.distinct_probes, 5);
    }

    #[test]
    fn index_ignores_short_tuples() {
        // Heterogeneous arities sharing a relation: tuples lacking the
        // indexed column are unreachable by probes, matching scan_match.
        let mut r = Relation::new(RelationSchema::new("r"));
        r.ensure_index(&[2]);
        r.insert(t(&[1]), 1, 0);
        r.insert(t(&[1, 2, 3]), 2, 0);
        assert_eq!(probed(&r, &[2], &[3], u64::MAX), vec![t(&[1, 2, 3])]);
        r.remove(&t(&[1]));
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn schema_key_projection() {
        let s = RelationSchema::new("r").with_keys(vec![1]);
        assert_eq!(s.key_of(&t(&[7, 8])), vec![Value::Int(8)]);
        let s = RelationSchema::new("r");
        assert_eq!(s.key_of(&t(&[7, 8])).len(), 2);
    }
}
