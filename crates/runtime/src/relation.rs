//! Stored relations: primary keys, derivation counts, timestamps and
//! soft-state lifetimes.
//!
//! Each relation follows the paper's data model (Section 2): it has a
//! primary key (defaulting to the full set of attributes) and stores one
//! tuple per key. Three pieces of bookkeeping ride along with each tuple:
//!
//! * a **derivation count** — the count algorithm of Gupta et al. used for
//!   incremental deletions (Section 4): duplicate derivations increment the
//!   count, deletions decrement it, and the tuple disappears only when the
//!   count reaches zero;
//! * a **timestamp** (local sequence number) — assigned on first insertion
//!   and used by pipelined semi-naive joins to match only "same or older"
//!   tuples (Section 3.3.2), which prevents repeated inferences;
//! * an optional **expiry time** for soft-state tables (Section 4.2):
//!   tuples must be refreshed before their TTL elapses or they are deleted.

use crate::tuple::Tuple;
use ndlog_lang::Value;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Schema of a stored relation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RelationSchema {
    /// Relation name.
    pub name: String,
    /// Primary-key column indexes; empty means "all columns".
    pub key_columns: Vec<usize>,
    /// Soft-state TTL in microseconds; `None` = hard state.
    pub ttl_micros: Option<u64>,
}

impl RelationSchema {
    /// A hard-state relation keyed on all columns.
    pub fn new(name: impl Into<String>) -> Self {
        RelationSchema {
            name: name.into(),
            key_columns: Vec::new(),
            ttl_micros: None,
        }
    }

    /// Set the primary-key columns.
    pub fn with_keys(mut self, keys: Vec<usize>) -> Self {
        self.key_columns = keys;
        self
    }

    /// Set a soft-state TTL (seconds).
    pub fn with_ttl_seconds(mut self, seconds: f64) -> Self {
        self.ttl_micros = Some((seconds * 1_000_000.0) as u64);
        self
    }

    /// The primary key of a tuple under this schema.
    pub fn key_of(&self, tuple: &Tuple) -> Vec<Value> {
        if self.key_columns.is_empty() {
            tuple.values().to_vec()
        } else {
            tuple.project(&self.key_columns)
        }
    }
}

/// A stored tuple with its bookkeeping.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StoredTuple {
    /// The tuple itself.
    pub tuple: Tuple,
    /// Number of outstanding derivations (count algorithm).
    pub count: u64,
    /// Local timestamp: the store-wide sequence number assigned when the
    /// tuple was first inserted.
    pub seq: u64,
    /// Absolute expiry time in microseconds (soft state only).
    pub expires_at: Option<u64>,
}

/// Result of inserting a tuple.
#[derive(Debug, Clone, PartialEq)]
pub enum InsertOutcome {
    /// The tuple is new: propagate an insertion delta.
    New,
    /// An identical tuple already exists: its derivation count was
    /// incremented, nothing to propagate.
    Duplicate,
    /// A different tuple with the same primary key existed and was
    /// replaced (P2's key-update semantics): propagate a deletion of the
    /// returned old tuple and an insertion of the new one.
    Replaced(Tuple),
}

/// Result of deleting a tuple.
#[derive(Debug, Clone, PartialEq)]
pub enum DeleteOutcome {
    /// The last derivation was removed: propagate a deletion delta.
    Removed,
    /// Other derivations remain; nothing to propagate.
    Decremented,
    /// No matching tuple was stored (or the stored tuple differs).
    NotFound,
}

/// A stored relation.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Relation {
    schema: RelationSchema,
    tuples: BTreeMap<Vec<Value>, StoredTuple>,
}

impl Relation {
    /// Create an empty relation.
    pub fn new(schema: RelationSchema) -> Self {
        Relation {
            schema,
            tuples: BTreeMap::new(),
        }
    }

    /// The relation's schema.
    pub fn schema(&self) -> &RelationSchema {
        &self.schema
    }

    /// Number of stored tuples.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// Whether the relation is empty.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// Whether an identical tuple is stored.
    pub fn contains(&self, tuple: &Tuple) -> bool {
        self.tuples
            .get(&self.schema.key_of(tuple))
            .is_some_and(|s| &s.tuple == tuple)
    }

    /// The stored tuple with the same primary key as `tuple`, if any.
    pub fn get_by_key_of(&self, tuple: &Tuple) -> Option<&StoredTuple> {
        self.tuples.get(&self.schema.key_of(tuple))
    }

    /// Look up by an explicit key.
    pub fn get(&self, key: &[Value]) -> Option<&StoredTuple> {
        self.tuples.get(key)
    }

    /// Iterate over stored tuples in key order (deterministic).
    pub fn iter(&self) -> impl Iterator<Item = &StoredTuple> {
        self.tuples.values()
    }

    /// Iterate over tuples matching equality constraints on the given
    /// columns, visible at or before `seq_limit`.
    pub fn scan_match(
        &self,
        bound: Vec<(usize, Value)>,
        seq_limit: u64,
    ) -> impl Iterator<Item = &StoredTuple> + '_ {
        self.tuples.values().filter(move |s| {
            s.seq <= seq_limit
                && bound
                    .iter()
                    .all(|(col, val)| s.tuple.get(*col) == Some(val))
        })
    }

    /// Insert a tuple (first derivation or an additional derivation).
    ///
    /// `seq` is the timestamp to assign if the tuple is new; `expires_at`
    /// the absolute expiry time for soft-state relations (ignored for hard
    /// state). Re-inserting an identical tuple refreshes its expiry —
    /// exactly the soft-state refresh behaviour of Section 4.2.
    pub fn insert(&mut self, tuple: Tuple, seq: u64, now_micros: u64) -> InsertOutcome {
        let key = self.schema.key_of(&tuple);
        let expires_at = self.schema.ttl_micros.map(|ttl| now_micros + ttl);
        match self.tuples.get_mut(&key) {
            None => {
                self.tuples.insert(
                    key,
                    StoredTuple {
                        tuple,
                        count: 1,
                        seq,
                        expires_at,
                    },
                );
                InsertOutcome::New
            }
            Some(existing) if existing.tuple == tuple => {
                existing.count += 1;
                if expires_at.is_some() {
                    existing.expires_at = expires_at;
                }
                InsertOutcome::Duplicate
            }
            Some(existing) => {
                let old = existing.tuple.clone();
                *existing = StoredTuple {
                    tuple,
                    count: 1,
                    seq,
                    expires_at,
                };
                InsertOutcome::Replaced(old)
            }
        }
    }

    /// Delete (one derivation of) a tuple.
    pub fn delete(&mut self, tuple: &Tuple) -> DeleteOutcome {
        let key = self.schema.key_of(tuple);
        match self.tuples.get_mut(&key) {
            Some(existing) if &existing.tuple == tuple => {
                if existing.count > 1 {
                    existing.count -= 1;
                    DeleteOutcome::Decremented
                } else {
                    self.tuples.remove(&key);
                    DeleteOutcome::Removed
                }
            }
            _ => DeleteOutcome::NotFound,
        }
    }

    /// Remove a tuple outright regardless of its derivation count (used
    /// when a primary-key replacement cascades).
    pub fn remove(&mut self, tuple: &Tuple) -> bool {
        let key = self.schema.key_of(tuple);
        match self.tuples.get(&key) {
            Some(existing) if &existing.tuple == tuple => {
                self.tuples.remove(&key);
                true
            }
            _ => false,
        }
    }

    /// Remove all tuples whose soft-state lifetime has elapsed, returning
    /// them.
    pub fn expire(&mut self, now_micros: u64) -> Vec<Tuple> {
        let expired: Vec<Vec<Value>> = self
            .tuples
            .iter()
            .filter(|(_, s)| s.expires_at.is_some_and(|t| t <= now_micros))
            .map(|(k, _)| k.clone())
            .collect();
        expired
            .into_iter()
            .filter_map(|k| self.tuples.remove(&k))
            .map(|s| s.tuple)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ndlog_lang::Value;

    fn t(vals: &[i64]) -> Tuple {
        Tuple::new(vals.iter().map(|&v| Value::Int(v)).collect())
    }

    fn keyed_relation() -> Relation {
        Relation::new(RelationSchema::new("r").with_keys(vec![0]))
    }

    #[test]
    fn insert_and_contains() {
        let mut r = keyed_relation();
        assert_eq!(r.insert(t(&[1, 10]), 1, 0), InsertOutcome::New);
        assert!(r.contains(&t(&[1, 10])));
        assert!(!r.contains(&t(&[1, 11])));
        assert_eq!(r.len(), 1);
        assert!(!r.is_empty());
    }

    #[test]
    fn duplicate_increments_count() {
        let mut r = keyed_relation();
        r.insert(t(&[1, 10]), 1, 0);
        assert_eq!(r.insert(t(&[1, 10]), 2, 0), InsertOutcome::Duplicate);
        let stored = r.get_by_key_of(&t(&[1, 10])).unwrap();
        assert_eq!(stored.count, 2);
        assert_eq!(stored.seq, 1, "timestamp keeps the first derivation's value");
    }

    #[test]
    fn replacement_returns_old_tuple() {
        let mut r = keyed_relation();
        r.insert(t(&[1, 10]), 1, 0);
        match r.insert(t(&[1, 20]), 2, 0) {
            InsertOutcome::Replaced(old) => assert_eq!(old, t(&[1, 10])),
            other => panic!("expected replacement, got {other:?}"),
        }
        assert!(r.contains(&t(&[1, 20])));
        assert!(!r.contains(&t(&[1, 10])));
    }

    #[test]
    fn count_algorithm_deletion() {
        let mut r = keyed_relation();
        r.insert(t(&[1, 10]), 1, 0);
        r.insert(t(&[1, 10]), 2, 0);
        assert_eq!(r.delete(&t(&[1, 10])), DeleteOutcome::Decremented);
        assert!(r.contains(&t(&[1, 10])));
        assert_eq!(r.delete(&t(&[1, 10])), DeleteOutcome::Removed);
        assert!(!r.contains(&t(&[1, 10])));
        assert_eq!(r.delete(&t(&[1, 10])), DeleteOutcome::NotFound);
    }

    #[test]
    fn stale_deletion_is_ignored() {
        let mut r = keyed_relation();
        r.insert(t(&[1, 10]), 1, 0);
        // Deleting a tuple with the same key but a different value does not
        // affect the stored tuple.
        assert_eq!(r.delete(&t(&[1, 99])), DeleteOutcome::NotFound);
        assert!(r.contains(&t(&[1, 10])));
    }

    #[test]
    fn remove_ignores_count() {
        let mut r = keyed_relation();
        r.insert(t(&[1, 10]), 1, 0);
        r.insert(t(&[1, 10]), 2, 0);
        assert!(r.remove(&t(&[1, 10])));
        assert!(r.is_empty());
        assert!(!r.remove(&t(&[1, 10])));
    }

    #[test]
    fn default_key_is_all_columns() {
        let mut r = Relation::new(RelationSchema::new("r"));
        r.insert(t(&[1, 10]), 1, 0);
        r.insert(t(&[1, 20]), 2, 0);
        assert_eq!(r.len(), 2, "different tuples coexist without a declared key");
    }

    #[test]
    fn scan_match_respects_bindings_and_seq() {
        let mut r = Relation::new(RelationSchema::new("r"));
        r.insert(t(&[1, 10]), 1, 0);
        r.insert(t(&[1, 20]), 2, 0);
        r.insert(t(&[2, 30]), 3, 0);
        let bound = vec![(0usize, Value::Int(1))];
        let hits: Vec<_> = r.scan_match(bound.clone(), u64::MAX).collect();
        assert_eq!(hits.len(), 2);
        let hits: Vec<_> = r.scan_match(bound, 1).collect();
        assert_eq!(hits.len(), 1, "seq limit hides newer tuples");
        let unbound: Vec<_> = r.scan_match(vec![], u64::MAX).collect();
        assert_eq!(unbound.len(), 3);
    }

    #[test]
    fn soft_state_expiry_and_refresh() {
        let mut r = Relation::new(RelationSchema::new("r").with_ttl_seconds(1.0));
        r.insert(t(&[1, 10]), 1, 0);
        r.insert(t(&[2, 20]), 2, 500_000);
        // Refresh tuple 1 at t=800ms: its lifetime now extends to 1.8s.
        assert_eq!(r.insert(t(&[1, 10]), 3, 800_000), InsertOutcome::Duplicate);
        let expired = r.expire(1_200_000);
        assert!(expired.is_empty(), "both tuples are still alive");
        let expired = r.expire(1_600_000);
        assert_eq!(expired, vec![t(&[2, 20])], "unrefreshed tuple expires");
        assert!(r.contains(&t(&[1, 10])));
        let expired = r.expire(2_000_000);
        assert_eq!(expired.len(), 1);
        assert!(r.is_empty());
    }

    #[test]
    fn hard_state_never_expires() {
        let mut r = keyed_relation();
        r.insert(t(&[1, 10]), 1, 0);
        assert!(r.expire(u64::MAX).is_empty());
    }

    #[test]
    fn schema_key_projection() {
        let s = RelationSchema::new("r").with_keys(vec![1]);
        assert_eq!(s.key_of(&t(&[7, 8])), vec![Value::Int(8)]);
        let s = RelationSchema::new("r");
        assert_eq!(s.key_of(&t(&[7, 8])).len(), 2);
    }
}
