//! Rule strands: compiled delta rules and their firing logic.
//!
//! A strand corresponds to one box-chain in P2's dataflow (Figures 3 and 5
//! of the paper): it is triggered by a delta of one body predicate, joins
//! the delta against the locally stored tables of the other body
//! predicates, evaluates assignments and filters, and emits derivations of
//! the head — each tagged with the network location (the head's location
//! specifier) where it must be stored.
//!
//! Deletions flow through the same machinery: firing a strand with a
//! deletion delta derives the deletions of every tuple previously derived
//! from the deleted tuple (Section 4's incremental deletion), which the
//! store then reconciles with the count algorithm.

use crate::expr::{eval, eval_bool, Bindings, EvalError};
use crate::store::Store;
use crate::tuple::{Tuple, TupleDelta};
use ndlog_lang::seminaive::DeltaRule;
use ndlog_lang::{Atom, Literal, Term, Value};
use ndlog_net::NodeAddr;

/// A derivation produced by firing a strand.
#[derive(Debug, Clone, PartialEq)]
pub struct Derivation {
    /// The derived (or un-derived) head tuple.
    pub delta: TupleDelta,
    /// Where the head tuple lives: the value of its location specifier.
    /// `None` when the first head field is not an address (possible in
    /// plain-Datalog test programs).
    pub location: Option<NodeAddr>,
}

/// A compiled rule strand.
#[derive(Debug, Clone, PartialEq)]
pub struct CompiledStrand {
    rule: DeltaRule,
}

impl CompiledStrand {
    /// Compile a delta rule into a strand.
    pub fn new(rule: DeltaRule) -> Self {
        CompiledStrand { rule }
    }

    /// The strand identifier (e.g. `sp2b-1`).
    pub fn id(&self) -> &str {
        &self.rule.strand_id
    }

    /// The relation whose deltas trigger this strand.
    pub fn trigger_relation(&self) -> &str {
        &self.rule.trigger_relation
    }

    /// The label of the rule this strand implements.
    pub fn rule_label(&self) -> &str {
        &self.rule.rule.label
    }

    /// The head relation this strand derives.
    pub fn head_relation(&self) -> &str {
        &self.rule.rule.head.name
    }

    /// The underlying delta rule.
    pub fn delta_rule(&self) -> &DeltaRule {
        &self.rule
    }

    /// Fire the strand with a trigger delta.
    ///
    /// `seq_limit` bounds which stored tuples the joins may see: pipelined
    /// semi-naive evaluation passes the trigger tuple's timestamp so that
    /// joins only match "same or older" tuples (Section 3.3.2, the
    /// book-keeping that guarantees no repeated inferences); the
    /// unrestricted evaluators pass `u64::MAX`.
    pub fn fire(
        &self,
        store: &Store,
        trigger: &TupleDelta,
        seq_limit: u64,
    ) -> Result<Vec<Derivation>, EvalError> {
        debug_assert_eq!(trigger.relation, self.rule.trigger_relation);
        let rule = &self.rule.rule;
        let Literal::Atom(trigger_atom) = &rule.body[self.rule.trigger] else {
            return Ok(Vec::new());
        };

        // Bind the trigger atom against the delta tuple.
        let mut initial = Bindings::new();
        if !bind_atom(trigger_atom, &trigger.tuple, &mut initial) {
            return Ok(Vec::new());
        }

        // Process the remaining literals in body order.
        let mut envs = vec![initial];
        for (idx, literal) in rule.body.iter().enumerate() {
            if idx == self.rule.trigger {
                continue;
            }
            if envs.is_empty() {
                return Ok(Vec::new());
            }
            match literal {
                Literal::Atom(atom) => {
                    envs = join_atom(store, atom, &envs, seq_limit);
                }
                Literal::Assign(assign) => {
                    let mut next = Vec::with_capacity(envs.len());
                    for mut env in envs {
                        let value = eval(&assign.expr, &env)?;
                        match env.get(&assign.var) {
                            Some(existing) if *existing == value => next.push(env),
                            Some(_) => {} // bound to a different value: drop
                            None => {
                                env.insert(assign.var.clone(), value);
                                next.push(env);
                            }
                        }
                    }
                    envs = next;
                }
                Literal::Filter(expr) => {
                    let mut next = Vec::with_capacity(envs.len());
                    for env in envs {
                        if eval_bool(expr, &env)? {
                            next.push(env);
                        }
                    }
                    envs = next;
                }
            }
        }

        // Project the head for every surviving binding.
        let mut out = Vec::with_capacity(envs.len());
        for env in envs {
            let tuple = project_head(&rule.head, &env)?;
            let location = tuple.location();
            out.push(Derivation {
                delta: TupleDelta {
                    relation: rule.head.name.clone(),
                    tuple,
                    sign: trigger.sign,
                },
                location,
            });
        }
        Ok(out)
    }
}

/// Bind an atom's terms against a concrete tuple, extending `env`.
/// Returns false if the tuple does not match (wrong arity, constant
/// mismatch, or inconsistent repeated variables).
pub fn bind_atom(atom: &Atom, tuple: &Tuple, env: &mut Bindings) -> bool {
    if atom.arity() != tuple.arity() {
        return false;
    }
    for (term, value) in atom.args.iter().zip(tuple.values()) {
        match term {
            Term::Const(c) => {
                if c != value {
                    return false;
                }
            }
            Term::Var(v) => match env.get(&v.name) {
                Some(bound) if bound != value => return false,
                Some(_) => {}
                None => {
                    env.insert(v.name.clone(), value.clone());
                }
            },
            Term::Agg(_) => return false,
        }
    }
    true
}

/// Join an atom against the store for every environment, producing the
/// extended environments.
fn join_atom(store: &Store, atom: &Atom, envs: &[Bindings], seq_limit: u64) -> Vec<Bindings> {
    let Some(relation) = store.relation(&atom.name) else {
        return Vec::new();
    };
    let mut out = Vec::new();
    for env in envs {
        // Columns already determined by the environment or constants.
        let bound: Vec<(usize, Value)> = atom
            .args
            .iter()
            .enumerate()
            .filter_map(|(i, t)| match t {
                Term::Const(c) => Some((i, c.clone())),
                Term::Var(v) => env.get(&v.name).map(|val| (i, val.clone())),
                Term::Agg(_) => None,
            })
            .collect();
        for candidate in relation.scan_match(bound, seq_limit) {
            let mut extended = env.clone();
            if bind_atom(atom, &candidate.tuple, &mut extended) {
                out.push(extended);
            }
        }
    }
    out
}

/// Project a head atom into a tuple under the given bindings.
pub fn project_head(head: &Atom, env: &Bindings) -> Result<Tuple, EvalError> {
    let mut values = Vec::with_capacity(head.arity());
    for term in &head.args {
        match term {
            Term::Const(c) => values.push(c.clone()),
            Term::Var(v) => values.push(
                env.get(&v.name)
                    .cloned()
                    .ok_or_else(|| EvalError::UnboundVariable(v.name.clone()))?,
            ),
            Term::Agg(_) => {
                return Err(EvalError::TypeMismatch {
                    context: "aggregate heads are maintained by AggregateView, not strands".into(),
                })
            }
        }
    }
    Ok(Tuple::new(values))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::relation::RelationSchema;
    use ndlog_lang::seminaive::delta_rewrite_full;
    use ndlog_lang::{parse_program, Value};

    fn addr(i: u32) -> Value {
        Value::addr(i)
    }

    /// Build a store + strands for a small program.
    fn setup(src: &str) -> (Store, Vec<CompiledStrand>) {
        let program = parse_program(src).unwrap();
        let store = Store::for_program(&program);
        let strands = delta_rewrite_full(&program)
            .into_iter()
            .map(CompiledStrand::new)
            .collect();
        (store, strands)
    }

    const ONE_HOP: &str = r#"
        sp1 path(@S,@D,@D,P,C) :- #link(@S,@D,C),
            P := f_cons(S, f_cons(D, nil)).
    "#;

    #[test]
    fn one_hop_path_derivation() {
        let (store, strands) = setup(ONE_HOP);
        let strand = &strands[0];
        assert_eq!(strand.trigger_relation(), "link");
        assert_eq!(strand.head_relation(), "path");

        let link = TupleDelta::insert("link", Tuple::new(vec![addr(0), addr(1), Value::Int(5)]));
        let derivations = strand.fire(&store, &link, u64::MAX).unwrap();
        assert_eq!(derivations.len(), 1);
        let d = &derivations[0];
        assert_eq!(d.delta.relation, "path");
        assert_eq!(d.location, Some(NodeAddr(0)));
        let t = &d.delta.tuple;
        assert_eq!(t.get(0), Some(&addr(0)));
        assert_eq!(t.get(1), Some(&addr(1)));
        assert_eq!(t.get(2), Some(&addr(1)));
        assert_eq!(t.get(3), Some(&Value::list(vec![addr(0), addr(1)])));
        assert_eq!(t.get(4), Some(&Value::Int(5)));
    }

    #[test]
    fn deletion_trigger_produces_deletion_derivation() {
        let (store, strands) = setup(ONE_HOP);
        let link = TupleDelta::delete("link", Tuple::new(vec![addr(0), addr(1), Value::Int(5)]));
        let derivations = strands[0].fire(&store, &link, u64::MAX).unwrap();
        assert_eq!(derivations.len(), 1);
        assert_eq!(derivations[0].delta.sign, crate::tuple::Sign::Delete);
    }

    const TWO_HOP: &str = r#"
        sp2 path(@S,@D,@Z,P,C) :- #link(@S,@Z,C1), path(@Z,@D,@Z2,P2,C2),
            f_member(P2, S) == 0, C := C1 + C2, P := f_cons(S, P2).
    "#;

    #[test]
    fn join_against_stored_relation() {
        let (mut store, strands) = setup(TWO_HOP);
        // Store a path from node 1 to node 2.
        let p12 = Tuple::new(vec![
            addr(1),
            addr(2),
            addr(2),
            Value::list(vec![addr(1), addr(2)]),
            Value::Int(3),
        ]);
        store.apply(&TupleDelta::insert("path", p12));

        // A link 0 -> 1 arrives: the strand triggered by link should derive
        // the two-hop path 0 -> 2.
        let link_strand = strands
            .iter()
            .find(|s| s.trigger_relation() == "link")
            .unwrap();
        let link = TupleDelta::insert("link", Tuple::new(vec![addr(0), addr(1), Value::Int(4)]));
        let out = link_strand.fire(&store, &link, u64::MAX).unwrap();
        assert_eq!(out.len(), 1);
        let t = &out[0].delta.tuple;
        assert_eq!(t.get(0), Some(&addr(0)));
        assert_eq!(t.get(1), Some(&addr(2)));
        assert_eq!(t.get(4), Some(&Value::Int(7)));
        assert_eq!(
            t.get(3),
            Some(&Value::list(vec![addr(0), addr(1), addr(2)]))
        );
        assert_eq!(out[0].location, Some(NodeAddr(0)));
    }

    #[test]
    fn cycle_filter_prunes_matches() {
        let (mut store, strands) = setup(TWO_HOP);
        // Path 1 -> 0 that already contains node 0.
        let p10 = Tuple::new(vec![
            addr(1),
            addr(0),
            addr(0),
            Value::list(vec![addr(1), addr(0)]),
            Value::Int(3),
        ]);
        store.apply(&TupleDelta::insert("path", p10));
        let link_strand = strands
            .iter()
            .find(|s| s.trigger_relation() == "link")
            .unwrap();
        // link 0 -> 1 would close the cycle 0 -> 1 -> 0; f_member filters it.
        let link = TupleDelta::insert("link", Tuple::new(vec![addr(0), addr(1), Value::Int(4)]));
        let out = link_strand.fire(&store, &link, u64::MAX).unwrap();
        assert!(out.is_empty());
    }

    #[test]
    fn path_trigger_joins_stored_links() {
        let (mut store, strands) = setup(TWO_HOP);
        store.apply(&TupleDelta::insert(
            "link",
            Tuple::new(vec![addr(0), addr(1), Value::Int(4)]),
        ));
        let path_strand = strands
            .iter()
            .find(|s| s.trigger_relation() == "path")
            .unwrap();
        let p12 = TupleDelta::insert(
            "path",
            Tuple::new(vec![
                addr(1),
                addr(2),
                addr(2),
                Value::list(vec![addr(1), addr(2)]),
                Value::Int(3),
            ]),
        );
        let out = path_strand.fire(&store, &p12, u64::MAX).unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].delta.tuple.get(4), Some(&Value::Int(7)));
    }

    #[test]
    fn seq_limit_hides_newer_tuples() {
        let (mut store, strands) = setup(TWO_HOP);
        let link_effect = store.apply(&TupleDelta::insert(
            "link",
            Tuple::new(vec![addr(0), addr(1), Value::Int(4)]),
        ));
        // The path tuple arrives *after* the link.
        let p12 = TupleDelta::insert(
            "path",
            Tuple::new(vec![
                addr(1),
                addr(2),
                addr(2),
                Value::list(vec![addr(1), addr(2)]),
                Value::Int(3),
            ]),
        );
        store.apply(&p12);

        let link_strand = strands
            .iter()
            .find(|s| s.trigger_relation() == "link")
            .unwrap();
        let link = TupleDelta::insert("link", Tuple::new(vec![addr(0), addr(1), Value::Int(4)]));
        // Firing with the link's own (older) timestamp must not see the
        // newer path tuple — that derivation belongs to the path-triggered
        // strand, which is exactly how PSN avoids duplicate inferences.
        let out = link_strand.fire(&store, &link, link_effect.seq).unwrap();
        assert!(out.is_empty());
        let out = link_strand.fire(&store, &link, u64::MAX).unwrap();
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn constant_argument_filters_trigger() {
        let (store, strands) = setup("r1 hit(@S) :- probe(@S, 7).");
        let strand = &strands[0];
        let ok = TupleDelta::insert("probe", Tuple::new(vec![addr(3), Value::Int(7)]));
        assert_eq!(strand.fire(&store, &ok, u64::MAX).unwrap().len(), 1);
        let miss = TupleDelta::insert("probe", Tuple::new(vec![addr(3), Value::Int(8)]));
        assert!(strand.fire(&store, &miss, u64::MAX).unwrap().is_empty());
        let wrong_arity = TupleDelta::insert("probe", Tuple::new(vec![addr(3)]));
        assert!(strand.fire(&store, &wrong_arity, u64::MAX).unwrap().is_empty());
    }

    #[test]
    fn repeated_variables_enforce_equality() {
        let (store, strands) = setup("r1 selfloop(@S) :- edge(@S, @S).");
        let strand = &strands[0];
        let hit = TupleDelta::insert("edge", Tuple::new(vec![addr(1), addr(1)]));
        assert_eq!(strand.fire(&store, &hit, u64::MAX).unwrap().len(), 1);
        let miss = TupleDelta::insert("edge", Tuple::new(vec![addr(1), addr(2)]));
        assert!(strand.fire(&store, &miss, u64::MAX).unwrap().is_empty());
    }

    #[test]
    fn assignment_conflict_drops_binding() {
        // C is bound by the atom and then re-asserted by an assignment; a
        // mismatch must drop the derivation, a match must keep it.
        let (store, strands) = setup("r1 out(@S, C) :- q(@S, C), C := 5.");
        let strand = &strands[0];
        let hit = TupleDelta::insert("q", Tuple::new(vec![addr(0), Value::Int(5)]));
        assert_eq!(strand.fire(&store, &hit, u64::MAX).unwrap().len(), 1);
        let miss = TupleDelta::insert("q", Tuple::new(vec![addr(0), Value::Int(6)]));
        assert!(strand.fire(&store, &miss, u64::MAX).unwrap().is_empty());
    }

    #[test]
    fn missing_relation_yields_no_matches() {
        let program = parse_program("r1 out(@S) :- q(@S, C), missing(@S, C).").unwrap();
        // Build a store *without* the `missing` relation.
        let mut store = Store::new();
        store.ensure(RelationSchema::new("q"));
        let strands: Vec<_> = delta_rewrite_full(&program)
            .into_iter()
            .map(CompiledStrand::new)
            .collect();
        let strand = strands.iter().find(|s| s.trigger_relation() == "q").unwrap();
        let d = TupleDelta::insert("q", Tuple::new(vec![addr(0), Value::Int(1)]));
        assert!(strand.fire(&store, &d, u64::MAX).unwrap().is_empty());
    }

    #[test]
    fn unbound_head_variable_is_an_error() {
        // Bypass validation deliberately to exercise the runtime error path.
        let (store, strands) = setup("r1 out(@S, X) :- q(@S, C).");
        let d = TupleDelta::insert("q", Tuple::new(vec![addr(0), Value::Int(1)]));
        assert!(matches!(
            strands[0].fire(&store, &d, u64::MAX),
            Err(EvalError::UnboundVariable(v)) if v == "X"
        ));
    }
}
