//! Rule strands: compiled delta rules and their firing logic.
//!
//! A strand corresponds to one box-chain in P2's dataflow (Figures 3 and 5
//! of the paper): it is triggered by a delta of one body predicate, joins
//! the delta against the locally stored tables of the other body
//! predicates, evaluates assignments and filters, and emits derivations of
//! the head — each tagged with the network location (the head's location
//! specifier) where it must be stored.
//!
//! Deletions flow through the same machinery, but as the *over-delete*
//! phase of a DRed pass (see [`crate::dred`]): firing a strand with a
//! deletion delta derives the deletions of every tuple derivable from the
//! deleted tuple, the whole closure is removed outright, and survivors are
//! restored by re-derivation against the post-removal store. Derivation
//! counts — which SN/BSN over-counting and primary-key replacements can
//! make inexact — are deliberately never consulted on the deletion path.
//!
//! # Probe plans
//!
//! Joining an atom used to mean scanning its whole relation once per
//! binding environment. Compilation now analyzes, per body atom, which of
//! its columns are already bound when the join runs — constants, variables
//! bound by the trigger atom, by earlier atoms, or by earlier assignments —
//! and records the result as a fixed [`ProbePlan`]. At runtime the plan
//! resolves its bound columns against the environment and probes the
//! relation's secondary index for that signature (see [`crate::index`]),
//! touching only the matching tuples; the full scan survives solely as the
//! fallback for atoms with no bound columns (a genuine cross product) or
//! relations without the declared index. [`CompiledStrand::index_requirements`]
//! exposes every signature a strand needs so stores build each index once
//! per program, not per join.

use crate::expr::{eval, eval_bool, Bindings, EvalError};
use crate::store::Store;
use crate::tuple::{Tuple, TupleDelta};
use ndlog_lang::seminaive::DeltaRule;
use ndlog_lang::{Atom, Literal, Term, Value};
use ndlog_net::NodeAddr;
use std::collections::BTreeSet;

/// A derivation produced by firing a strand.
#[derive(Debug, Clone, PartialEq)]
pub struct Derivation {
    /// The derived (or un-derived) head tuple.
    pub delta: TupleDelta,
    /// Where the head tuple lives: the value of its location specifier.
    /// `None` when the first head field is not an address (possible in
    /// plain-Datalog test programs).
    pub location: Option<NodeAddr>,
}

/// How one bound column of a probe obtains its value at runtime.
#[derive(Debug, Clone, PartialEq)]
pub enum ColumnSource {
    /// The atom carries a constant in this column.
    Const(Value),
    /// The column's variable is bound by the environment (trigger atom,
    /// an earlier atom, or an earlier assignment).
    Var(String),
}

/// A precompiled access path for one body atom: the columns that are
/// provably bound when the join runs, and how to resolve each one.
///
/// `cols` is sorted ascending and `sources` is parallel to it, so the
/// resolved values line up with the relation's index on the same
/// signature.
#[derive(Debug, Clone, PartialEq)]
pub struct ProbePlan {
    /// Sorted bound-column indexes (the index signature to probe).
    pub cols: Vec<usize>,
    /// Value source per bound column, parallel to `cols`.
    pub sources: Vec<ColumnSource>,
}

pub use crate::index::JoinStats;

/// A compiled rule strand.
#[derive(Debug, Clone, PartialEq)]
pub struct CompiledStrand {
    rule: DeltaRule,
    /// Per body literal: the probe plan for non-trigger atoms with at least
    /// one bound column, `None` for the trigger, non-atom literals and
    /// genuinely unbound atoms.
    plans: Vec<Option<ProbePlan>>,
    /// The slot-compiled twin of the rule, used by the batch-delta path
    /// ([`CompiledStrand::fire_batch`]).
    batch: crate::batch::BatchPlan,
}

impl CompiledStrand {
    /// Compile a delta rule into a strand, deriving a probe plan for every
    /// non-trigger body atom and a slot-compiled batch plan over the same
    /// plans.
    pub fn new(rule: DeltaRule) -> Self {
        let plans = compile_probe_plans(&rule);
        let batch = crate::batch::compile(&rule, &plans);
        CompiledStrand { rule, plans, batch }
    }

    /// The probe plans, parallel to the rule's body literals (useful for
    /// inspection in tests and planners).
    pub fn probe_plans(&self) -> &[Option<ProbePlan>] {
        &self.plans
    }

    /// Every (relation, bound-column signature) this strand probes. Stores
    /// declare these up front so each index is built once per program.
    pub fn index_requirements(&self) -> Vec<(String, Vec<usize>)> {
        let mut out = Vec::new();
        for (idx, plan) in self.plans.iter().enumerate() {
            let (Some(plan), Some(Literal::Atom(atom))) = (plan, self.rule.rule.body.get(idx))
            else {
                continue;
            };
            out.push((atom.name.clone(), plan.cols.clone()));
        }
        out
    }

    /// The (trigger relation, bound-column signature) that DRed
    /// re-derivation ([`crate::dred::rederive_inserts`]) probes when the
    /// head relation's primary key lives in `head_key_columns`: the
    /// trigger-atom columns pinned by binding those head columns. The
    /// candidates come from the planner's precomputed
    /// `DeltaRule::head_bound_trigger_cols`; this narrows them to the
    /// columns whose variables the key actually mentions. `None` when the
    /// key binds no trigger column (re-derivation then falls back to a
    /// scan of the trigger relation).
    pub fn rederive_requirement(&self, head_key_columns: &[usize]) -> Option<(String, Vec<usize>)> {
        let head = &self.rule.rule.head;
        let mut key_vars: BTreeSet<&str> = BTreeSet::new();
        for &col in head_key_columns {
            if let Some(Term::Var(v)) = head.args.get(col) {
                key_vars.insert(v.name.as_str());
            }
        }
        let Some(Literal::Atom(trigger_atom)) = self.rule.rule.body.get(self.rule.trigger) else {
            return None;
        };
        let cols: Vec<usize> = self
            .rule
            .head_bound_trigger_cols
            .iter()
            .copied()
            .filter(|&col| {
                matches!(trigger_atom.args.get(col),
                    Some(Term::Var(v)) if key_vars.contains(v.name.as_str()))
            })
            .collect();
        if cols.is_empty() {
            None
        } else {
            Some((self.rule.trigger_relation.clone(), cols))
        }
    }

    /// The strand identifier (e.g. `sp2b-1`).
    pub fn id(&self) -> &str {
        &self.rule.strand_id
    }

    /// The relation whose deltas trigger this strand.
    pub fn trigger_relation(&self) -> &str {
        &self.rule.trigger_relation
    }

    /// The label of the rule this strand implements.
    pub fn rule_label(&self) -> &str {
        &self.rule.rule.label
    }

    /// The head relation this strand derives.
    pub fn head_relation(&self) -> &str {
        &self.rule.rule.head.name
    }

    /// The underlying delta rule.
    pub fn delta_rule(&self) -> &DeltaRule {
        &self.rule
    }

    /// Fire the strand with a trigger delta.
    ///
    /// `seq_limit` bounds which stored tuples the joins may see: pipelined
    /// semi-naive evaluation passes the trigger tuple's timestamp so that
    /// joins only match "same or older" tuples (Section 3.3.2, the
    /// book-keeping that guarantees no repeated inferences); the
    /// unrestricted evaluators pass `u64::MAX`.
    pub fn fire(
        &self,
        store: &Store,
        trigger: &TupleDelta,
        seq_limit: u64,
    ) -> Result<Vec<Derivation>, EvalError> {
        let mut stats = JoinStats::default();
        self.fire_counted(store, trigger, seq_limit, &mut stats)
    }

    /// [`CompiledStrand::fire`] with join accounting: probe/scan/examined
    /// counters are accumulated into `stats`.
    pub fn fire_counted(
        &self,
        store: &Store,
        trigger: &TupleDelta,
        seq_limit: u64,
        stats: &mut JoinStats,
    ) -> Result<Vec<Derivation>, EvalError> {
        debug_assert_eq!(trigger.relation, self.rule.trigger_relation);
        let rule = &self.rule.rule;
        let Literal::Atom(trigger_atom) = &rule.body[self.rule.trigger] else {
            return Ok(Vec::new());
        };

        // Bind the trigger atom against the delta tuple.
        let mut initial = Bindings::new();
        if !bind_atom(trigger_atom, &trigger.tuple, &mut initial) {
            return Ok(Vec::new());
        }

        // Process the remaining literals in body order.
        let mut envs = vec![initial];
        for (idx, literal) in rule.body.iter().enumerate() {
            if idx == self.rule.trigger {
                continue;
            }
            if envs.is_empty() {
                return Ok(Vec::new());
            }
            match literal {
                Literal::Atom(atom) => {
                    envs = probe_atom(
                        store,
                        atom,
                        self.plans[idx].as_ref(),
                        &envs,
                        seq_limit,
                        stats,
                    );
                }
                Literal::Assign(assign) => {
                    let mut next = Vec::with_capacity(envs.len());
                    for mut env in envs {
                        let value = eval(&assign.expr, &env)?;
                        match env.get(&assign.var) {
                            Some(existing) if *existing == value => next.push(env),
                            Some(_) => {} // bound to a different value: drop
                            None => {
                                env.insert(assign.var.clone(), value);
                                next.push(env);
                            }
                        }
                    }
                    envs = next;
                }
                Literal::Filter(expr) => {
                    let mut next = Vec::with_capacity(envs.len());
                    for env in envs {
                        if eval_bool(expr, &env)? {
                            next.push(env);
                        }
                    }
                    envs = next;
                }
            }
        }

        // Project the head for every surviving binding.
        let mut out = Vec::with_capacity(envs.len());
        for env in envs {
            let tuple = project_head(&rule.head, &env)?;
            let location = tuple.location();
            out.push(Derivation {
                delta: TupleDelta {
                    relation: rule.head.name.clone(),
                    tuple,
                    sign: trigger.sign,
                },
                location,
            });
        }
        Ok(out)
    }

    /// Fire the strand with a whole batch of trigger deltas through the
    /// slot-compiled plan and flat reusable buffers of [`crate::batch`],
    /// with **key-grouped probe sharing**: each distinct probe key of the
    /// batch is looked up once per atom and the match set broadcast to
    /// every same-key trigger. Per trigger, the derivations (grouped in
    /// `out`) are identical to calling [`CompiledStrand::fire_counted`]
    /// with that trigger and its `seq_limit` against the same store, and
    /// so are the *logical* join statistics (`logical_probes`, `scans`,
    /// `tuples_examined`); only `distinct_probes` shrinks to the number of
    /// bucket lookups actually executed. See the [`crate::batch`] module
    /// docs for the exact equivalence contract.
    pub fn fire_batch(
        &self,
        store: &Store,
        triggers: &[crate::batch::BatchTrigger],
        stats: &mut JoinStats,
        scratch: &mut crate::batch::BatchScratch,
        out: &mut crate::batch::BatchOutput,
    ) -> Result<(), EvalError> {
        debug_assert!(triggers
            .iter()
            .all(|t| t.delta.relation == self.rule.trigger_relation));
        self.batch
            .fire_batch(store, triggers, stats, scratch, out, true, None)
    }

    /// [`CompiledStrand::fire_batch`] with a cross-rule probe cache
    /// ([`crate::subplan`]): probe stages whose `(relation, cols)`
    /// signature is armed in `cache` fetch their candidates through it,
    /// so a `(relation, cols, key)` bucket lookup executes once per round
    /// no matter how many strands share it. Derivations and the logical
    /// join statistics are identical to [`CompiledStrand::fire_batch`];
    /// only `distinct_probes` shrinks further (cache hits execute no
    /// lookup), and single-trigger batches also take the grouped arm so
    /// their probes participate in the sharing.
    pub fn fire_batch_shared<'r>(
        &self,
        store: &'r Store,
        triggers: &[crate::batch::BatchTrigger],
        stats: &mut JoinStats,
        scratch: &mut crate::batch::BatchScratch,
        out: &mut crate::batch::BatchOutput,
        cache: &mut crate::subplan::ProbeCache<'r>,
    ) -> Result<(), EvalError> {
        debug_assert!(triggers
            .iter()
            .all(|t| t.delta.relation == self.rule.trigger_relation));
        self.batch
            .fire_batch(store, triggers, stats, scratch, out, true, Some(cache))
    }

    /// [`CompiledStrand::fire_batch`] without probe grouping: one index
    /// lookup per trigger per atom, exactly the PR 4 batch path. Kept as
    /// the differential reference — its `JoinStats` (including
    /// `distinct_probes`) equal the tuple-at-a-time path's exactly.
    pub fn fire_batch_ungrouped(
        &self,
        store: &Store,
        triggers: &[crate::batch::BatchTrigger],
        stats: &mut JoinStats,
        scratch: &mut crate::batch::BatchScratch,
        out: &mut crate::batch::BatchOutput,
    ) -> Result<(), EvalError> {
        debug_assert!(triggers
            .iter()
            .all(|t| t.delta.relation == self.rule.trigger_relation));
        self.batch
            .fire_batch(store, triggers, stats, scratch, out, false, None)
    }
}

/// Bind an atom's terms against a concrete tuple, extending `env`.
/// Returns false if the tuple does not match (wrong arity, constant
/// mismatch, or inconsistent repeated variables).
pub fn bind_atom(atom: &Atom, tuple: &Tuple, env: &mut Bindings) -> bool {
    if atom.arity() != tuple.arity() {
        return false;
    }
    for (term, value) in atom.args.iter().zip(tuple.values()) {
        match term {
            Term::Const(c) => {
                if c != value {
                    return false;
                }
            }
            Term::Var(v) => match env.get(&v.name) {
                Some(bound) if bound != value => return false,
                Some(_) => {}
                None => {
                    env.insert(v.name.clone(), value.clone());
                }
            },
            Term::Agg(_) => return false,
        }
    }
    true
}

/// Compile the probe plans for a delta rule: walk the body in firing order
/// tracking which variables are bound, and record the bound columns of
/// every non-trigger atom.
fn compile_probe_plans(rule: &DeltaRule) -> Vec<Option<ProbePlan>> {
    let body = &rule.rule.body;
    let mut plans: Vec<Option<ProbePlan>> = vec![None; body.len()];
    let mut bound: BTreeSet<String> = BTreeSet::new();
    if let Some(Literal::Atom(trigger_atom)) = body.get(rule.trigger) {
        collect_vars(trigger_atom, &mut bound);
    }
    for (idx, literal) in body.iter().enumerate() {
        if idx == rule.trigger {
            continue;
        }
        match literal {
            Literal::Atom(atom) => {
                let mut cols = Vec::new();
                let mut sources = Vec::new();
                for (i, term) in atom.args.iter().enumerate() {
                    match term {
                        Term::Const(c) => {
                            cols.push(i);
                            sources.push(ColumnSource::Const(c.clone()));
                        }
                        Term::Var(v) if bound.contains(&v.name) => {
                            cols.push(i);
                            sources.push(ColumnSource::Var(v.name.clone()));
                        }
                        // Unbound variables (including the first occurrence
                        // of a variable repeated within this atom) and
                        // aggregate terms are matched residually by
                        // `bind_atom`.
                        Term::Var(_) | Term::Agg(_) => {}
                    }
                }
                if !cols.is_empty() {
                    plans[idx] = Some(ProbePlan { cols, sources });
                }
                collect_vars(atom, &mut bound);
            }
            Literal::Assign(assign) => {
                bound.insert(assign.var.clone());
            }
            Literal::Filter(_) => {}
        }
    }
    plans
}

/// Add every variable an atom mentions to `bound`.
fn collect_vars(atom: &Atom, bound: &mut BTreeSet<String>) {
    for term in &atom.args {
        if let Term::Var(v) = term {
            bound.insert(v.name.clone());
        }
    }
}

/// Join an atom against the store for every environment, producing the
/// extended environments. Uses the precompiled probe plan (index probe on
/// the bound-column signature) when available, falling back to a residual
/// scan otherwise.
fn probe_atom(
    store: &Store,
    atom: &Atom,
    plan: Option<&ProbePlan>,
    envs: &[Bindings],
    seq_limit: u64,
    stats: &mut JoinStats,
) -> Vec<Bindings> {
    let Some(relation) = store.relation(&atom.name) else {
        return Vec::new();
    };
    let mut out = Vec::new();
    let mut key: Vec<Value> = Vec::new();
    for env in envs {
        let resolved = match plan {
            Some(plan) => {
                key.clear();
                plan.sources.iter().all(|source| match source {
                    ColumnSource::Const(c) => {
                        key.push(c.clone());
                        true
                    }
                    ColumnSource::Var(name) => match env.get(name) {
                        Some(v) => {
                            key.push(v.clone());
                            true
                        }
                        None => false,
                    },
                })
            }
            None => false,
        };
        // With a resolved plan, probe (or residual-scan) on its bound
        // columns; otherwise — no bound columns, or an unresolvable plan,
        // which compilation rules out — fall back to a full scan, with
        // `bind_atom` enforcing all residual constraints either way.
        let cols: &[usize] = if resolved {
            &plan.expect("resolved implies a plan").cols
        } else {
            key.clear();
            &[]
        };
        for candidate in relation.lookup(cols, &key, seq_limit, stats) {
            let mut extended = env.clone();
            if bind_atom(atom, &candidate.tuple, &mut extended) {
                out.push(extended);
            }
        }
    }
    out
}

/// Project a head atom into a tuple under the given bindings.
pub fn project_head(head: &Atom, env: &Bindings) -> Result<Tuple, EvalError> {
    let mut values = Vec::with_capacity(head.arity());
    for term in &head.args {
        match term {
            Term::Const(c) => values.push(c.clone()),
            Term::Var(v) => values.push(
                env.get(&v.name)
                    .cloned()
                    .ok_or_else(|| EvalError::UnboundVariable(v.name.clone()))?,
            ),
            Term::Agg(_) => {
                return Err(EvalError::TypeMismatch {
                    context: "aggregate heads are maintained by AggregateView, not strands".into(),
                })
            }
        }
    }
    Ok(Tuple::new(values))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::relation::RelationSchema;
    use ndlog_lang::seminaive::delta_rewrite_full;
    use ndlog_lang::{parse_program, Value};

    fn addr(i: u32) -> Value {
        Value::addr(i)
    }

    /// Build a store + strands for a small program.
    fn setup(src: &str) -> (Store, Vec<CompiledStrand>) {
        let program = parse_program(src).unwrap();
        let store = Store::for_program(&program);
        let strands = delta_rewrite_full(&program)
            .into_iter()
            .map(CompiledStrand::new)
            .collect();
        (store, strands)
    }

    const ONE_HOP: &str = r#"
        sp1 path(@S,@D,@D,P,C) :- #link(@S,@D,C),
            P := f_cons(S, f_cons(D, nil)).
    "#;

    #[test]
    fn one_hop_path_derivation() {
        let (store, strands) = setup(ONE_HOP);
        let strand = &strands[0];
        assert_eq!(strand.trigger_relation(), "link");
        assert_eq!(strand.head_relation(), "path");

        let link = TupleDelta::insert("link", Tuple::new(vec![addr(0), addr(1), Value::Int(5)]));
        let derivations = strand.fire(&store, &link, u64::MAX).unwrap();
        assert_eq!(derivations.len(), 1);
        let d = &derivations[0];
        assert_eq!(d.delta.relation, "path");
        assert_eq!(d.location, Some(NodeAddr(0)));
        let t = &d.delta.tuple;
        assert_eq!(t.get(0), Some(&addr(0)));
        assert_eq!(t.get(1), Some(&addr(1)));
        assert_eq!(t.get(2), Some(&addr(1)));
        assert_eq!(t.get(3), Some(&Value::list(vec![addr(0), addr(1)])));
        assert_eq!(t.get(4), Some(&Value::Int(5)));
    }

    #[test]
    fn deletion_trigger_produces_deletion_derivation() {
        let (store, strands) = setup(ONE_HOP);
        let link = TupleDelta::delete("link", Tuple::new(vec![addr(0), addr(1), Value::Int(5)]));
        let derivations = strands[0].fire(&store, &link, u64::MAX).unwrap();
        assert_eq!(derivations.len(), 1);
        assert_eq!(derivations[0].delta.sign, crate::tuple::Sign::Delete);
    }

    const TWO_HOP: &str = r#"
        sp2 path(@S,@D,@Z,P,C) :- #link(@S,@Z,C1), path(@Z,@D,@Z2,P2,C2),
            f_member(P2, S) == 0, C := C1 + C2, P := f_cons(S, P2).
    "#;

    #[test]
    fn join_against_stored_relation() {
        let (mut store, strands) = setup(TWO_HOP);
        // Store a path from node 1 to node 2.
        let p12 = Tuple::new(vec![
            addr(1),
            addr(2),
            addr(2),
            Value::list(vec![addr(1), addr(2)]),
            Value::Int(3),
        ]);
        store.apply(&TupleDelta::insert("path", p12));

        // A link 0 -> 1 arrives: the strand triggered by link should derive
        // the two-hop path 0 -> 2.
        let link_strand = strands
            .iter()
            .find(|s| s.trigger_relation() == "link")
            .unwrap();
        let link = TupleDelta::insert("link", Tuple::new(vec![addr(0), addr(1), Value::Int(4)]));
        let out = link_strand.fire(&store, &link, u64::MAX).unwrap();
        assert_eq!(out.len(), 1);
        let t = &out[0].delta.tuple;
        assert_eq!(t.get(0), Some(&addr(0)));
        assert_eq!(t.get(1), Some(&addr(2)));
        assert_eq!(t.get(4), Some(&Value::Int(7)));
        assert_eq!(
            t.get(3),
            Some(&Value::list(vec![addr(0), addr(1), addr(2)]))
        );
        assert_eq!(out[0].location, Some(NodeAddr(0)));
    }

    #[test]
    fn cycle_filter_prunes_matches() {
        let (mut store, strands) = setup(TWO_HOP);
        // Path 1 -> 0 that already contains node 0.
        let p10 = Tuple::new(vec![
            addr(1),
            addr(0),
            addr(0),
            Value::list(vec![addr(1), addr(0)]),
            Value::Int(3),
        ]);
        store.apply(&TupleDelta::insert("path", p10));
        let link_strand = strands
            .iter()
            .find(|s| s.trigger_relation() == "link")
            .unwrap();
        // link 0 -> 1 would close the cycle 0 -> 1 -> 0; f_member filters it.
        let link = TupleDelta::insert("link", Tuple::new(vec![addr(0), addr(1), Value::Int(4)]));
        let out = link_strand.fire(&store, &link, u64::MAX).unwrap();
        assert!(out.is_empty());
    }

    #[test]
    fn path_trigger_joins_stored_links() {
        let (mut store, strands) = setup(TWO_HOP);
        store.apply(&TupleDelta::insert(
            "link",
            Tuple::new(vec![addr(0), addr(1), Value::Int(4)]),
        ));
        let path_strand = strands
            .iter()
            .find(|s| s.trigger_relation() == "path")
            .unwrap();
        let p12 = TupleDelta::insert(
            "path",
            Tuple::new(vec![
                addr(1),
                addr(2),
                addr(2),
                Value::list(vec![addr(1), addr(2)]),
                Value::Int(3),
            ]),
        );
        let out = path_strand.fire(&store, &p12, u64::MAX).unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].delta.tuple.get(4), Some(&Value::Int(7)));
    }

    #[test]
    fn seq_limit_hides_newer_tuples() {
        let (mut store, strands) = setup(TWO_HOP);
        let link_effect = store.apply(&TupleDelta::insert(
            "link",
            Tuple::new(vec![addr(0), addr(1), Value::Int(4)]),
        ));
        // The path tuple arrives *after* the link.
        let p12 = TupleDelta::insert(
            "path",
            Tuple::new(vec![
                addr(1),
                addr(2),
                addr(2),
                Value::list(vec![addr(1), addr(2)]),
                Value::Int(3),
            ]),
        );
        store.apply(&p12);

        let link_strand = strands
            .iter()
            .find(|s| s.trigger_relation() == "link")
            .unwrap();
        let link = TupleDelta::insert("link", Tuple::new(vec![addr(0), addr(1), Value::Int(4)]));
        // Firing with the link's own (older) timestamp must not see the
        // newer path tuple — that derivation belongs to the path-triggered
        // strand, which is exactly how PSN avoids duplicate inferences.
        let out = link_strand.fire(&store, &link, link_effect.seq).unwrap();
        assert!(out.is_empty());
        let out = link_strand.fire(&store, &link, u64::MAX).unwrap();
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn constant_argument_filters_trigger() {
        let (store, strands) = setup("r1 hit(@S) :- probe(@S, 7).");
        let strand = &strands[0];
        let ok = TupleDelta::insert("probe", Tuple::new(vec![addr(3), Value::Int(7)]));
        assert_eq!(strand.fire(&store, &ok, u64::MAX).unwrap().len(), 1);
        let miss = TupleDelta::insert("probe", Tuple::new(vec![addr(3), Value::Int(8)]));
        assert!(strand.fire(&store, &miss, u64::MAX).unwrap().is_empty());
        let wrong_arity = TupleDelta::insert("probe", Tuple::new(vec![addr(3)]));
        assert!(strand
            .fire(&store, &wrong_arity, u64::MAX)
            .unwrap()
            .is_empty());
    }

    #[test]
    fn repeated_variables_enforce_equality() {
        let (store, strands) = setup("r1 selfloop(@S) :- edge(@S, @S).");
        let strand = &strands[0];
        let hit = TupleDelta::insert("edge", Tuple::new(vec![addr(1), addr(1)]));
        assert_eq!(strand.fire(&store, &hit, u64::MAX).unwrap().len(), 1);
        let miss = TupleDelta::insert("edge", Tuple::new(vec![addr(1), addr(2)]));
        assert!(strand.fire(&store, &miss, u64::MAX).unwrap().is_empty());
    }

    #[test]
    fn assignment_conflict_drops_binding() {
        // C is bound by the atom and then re-asserted by an assignment; a
        // mismatch must drop the derivation, a match must keep it.
        let (store, strands) = setup("r1 out(@S, C) :- q(@S, C), C := 5.");
        let strand = &strands[0];
        let hit = TupleDelta::insert("q", Tuple::new(vec![addr(0), Value::Int(5)]));
        assert_eq!(strand.fire(&store, &hit, u64::MAX).unwrap().len(), 1);
        let miss = TupleDelta::insert("q", Tuple::new(vec![addr(0), Value::Int(6)]));
        assert!(strand.fire(&store, &miss, u64::MAX).unwrap().is_empty());
    }

    #[test]
    fn probe_plans_capture_bound_columns() {
        let (_, strands) = setup(TWO_HOP);
        let link_strand = strands
            .iter()
            .find(|s| s.trigger_relation() == "link")
            .unwrap();
        // Triggered by #link(@S,@Z,C1): the path(@Z,@D,@Z2,P2,C2) atom has
        // exactly its first column bound (Z), everything else free.
        let reqs = link_strand.index_requirements();
        assert_eq!(reqs, vec![("path".to_string(), vec![0])]);
        let plan = link_strand
            .probe_plans()
            .iter()
            .flatten()
            .next()
            .expect("the path atom has a plan");
        assert_eq!(plan.cols, vec![0]);
        assert_eq!(plan.sources, vec![ColumnSource::Var("Z".to_string())]);

        // Triggered by path, the #link(@S,@Z,C1) atom has column 1 bound.
        let path_strand = strands
            .iter()
            .find(|s| s.trigger_relation() == "path")
            .unwrap();
        assert_eq!(
            path_strand.index_requirements(),
            vec![("link".to_string(), vec![1])]
        );
    }

    #[test]
    fn probe_plans_include_constants_and_assigned_vars() {
        let (_, strands) = setup("r1 out(@S) :- q(@S, X), Y := X + 1, w(@S, Y, 7).");
        let q_strand = strands
            .iter()
            .find(|s| s.trigger_relation() == "q")
            .unwrap();
        let reqs = q_strand.index_requirements();
        // w's columns: 0 (S, bound by trigger), 1 (Y, bound by the
        // assignment), 2 (the constant 7).
        assert_eq!(reqs, vec![("w".to_string(), vec![0, 1, 2])]);
    }

    #[test]
    fn probed_join_matches_scan_results() {
        // The same join fired with and without the index declared must
        // produce identical derivations (the index is purely an access
        // path).
        let (mut store, strands) = setup(TWO_HOP);
        for d in 2..30u32 {
            store.apply(&TupleDelta::insert(
                "path",
                Tuple::new(vec![
                    addr(1),
                    addr(d),
                    addr(d),
                    Value::list(vec![addr(1), addr(d)]),
                    Value::Int(3),
                ]),
            ));
        }
        let link_strand = strands
            .iter()
            .find(|s| s.trigger_relation() == "link")
            .unwrap();
        let link = TupleDelta::insert("link", Tuple::new(vec![addr(0), addr(1), Value::Int(4)]));

        let mut scan_stats = JoinStats::default();
        let scanned = link_strand
            .fire_counted(&store, &link, u64::MAX, &mut scan_stats)
            .unwrap();
        assert!(scan_stats.scans > 0 && scan_stats.logical_probes == 0);

        store.declare_indexes(strands.iter());
        let mut probe_stats = JoinStats::default();
        let probed = link_strand
            .fire_counted(&store, &link, u64::MAX, &mut probe_stats)
            .unwrap();
        assert_eq!(scanned, probed);
        assert_eq!(probed.len(), 28);
        assert!(probe_stats.logical_probes > 0 && probe_stats.scans == 0);
        assert_eq!(
            probe_stats.logical_probes, probe_stats.distinct_probes,
            "tuple-at-a-time probes are never shared"
        );
        assert!(
            probe_stats.tuples_examined <= scan_stats.tuples_examined,
            "probing must not examine more than scanning"
        );
    }

    #[test]
    fn fire_batch_matches_fire_per_trigger() {
        use crate::batch::{BatchOutput, BatchScratch, BatchTrigger};
        let (mut store, strands) = setup(TWO_HOP);
        store.declare_indexes(strands.iter());
        for d in 2..12u32 {
            store.apply(&TupleDelta::insert(
                "path",
                Tuple::new(vec![
                    addr(1),
                    addr(d),
                    addr(d),
                    Value::list(vec![addr(1), addr(d)]),
                    Value::Int(3),
                ]),
            ));
        }
        let link_strand = strands
            .iter()
            .find(|s| s.trigger_relation() == "link")
            .unwrap();
        // A matching insert, a deletion, a dead-end link and a filtered
        // (cycle-closing) one, each with its own visibility limit.
        let deltas = [
            (
                TupleDelta::insert("link", Tuple::new(vec![addr(0), addr(1), Value::Int(4)])),
                u64::MAX,
            ),
            (
                TupleDelta::delete("link", Tuple::new(vec![addr(7), addr(1), Value::Int(9)])),
                u64::MAX,
            ),
            (
                TupleDelta::insert("link", Tuple::new(vec![addr(0), addr(99), Value::Int(1)])),
                u64::MAX,
            ),
            (
                TupleDelta::insert("link", Tuple::new(vec![addr(0), addr(1), Value::Int(4)])),
                5,
            ),
        ];
        let triggers: Vec<BatchTrigger> = deltas
            .iter()
            .map(|(delta, seq_limit)| BatchTrigger {
                delta,
                seq_limit: *seq_limit,
            })
            .collect();
        let mut batch_stats = JoinStats::default();
        let mut scratch = BatchScratch::default();
        let mut out = BatchOutput::default();
        link_strand
            .fire_batch(&store, &triggers, &mut batch_stats, &mut scratch, &mut out)
            .unwrap();

        let mut tuple_stats = JoinStats::default();
        for (i, (delta, seq_limit)) in deltas.iter().enumerate() {
            let reference = link_strand
                .fire_counted(&store, delta, *seq_limit, &mut tuple_stats)
                .unwrap();
            assert_eq!(
                out.for_trigger(i),
                &reference[..],
                "trigger {i} derivations diverge"
            );
        }
        // Grouped firing preserves the logical accounting exactly; only
        // the executed bucket lookups shrink (three of the four triggers
        // share the probe key Z = 1).
        assert_eq!(batch_stats.logical_probes, tuple_stats.logical_probes);
        assert_eq!(batch_stats.scans, tuple_stats.scans);
        assert_eq!(batch_stats.tuples_examined, tuple_stats.tuples_examined);
        assert_eq!(tuple_stats.distinct_probes, tuple_stats.logical_probes);
        assert_eq!(
            batch_stats.distinct_probes, 2,
            "four triggers over two distinct keys probe twice"
        );

        // The ungrouped batch path matches the tuple path's JoinStats
        // bit-for-bit, derivations included.
        let mut ungrouped_stats = JoinStats::default();
        let mut ungrouped_out = BatchOutput::default();
        link_strand
            .fire_batch_ungrouped(
                &store,
                &triggers,
                &mut ungrouped_stats,
                &mut scratch,
                &mut ungrouped_out,
            )
            .unwrap();
        assert_eq!(
            ungrouped_stats, tuple_stats,
            "ungrouped accounting diverges"
        );
        for i in 0..deltas.len() {
            assert_eq!(out.for_trigger(i), ungrouped_out.for_trigger(i));
        }
        assert!(!out.for_trigger(0).is_empty());
        // Trigger 0 extends all 10 stored paths; trigger 1 (from node 7)
        // extends 9 — the cycle filter drops path(1, 7).
        assert_eq!(out.for_trigger(0).len(), 10);
        assert_eq!(out.for_trigger(1).len(), 9);
        assert!(out.for_trigger(2).is_empty(), "dead-end link joins nothing");
        assert_eq!(out.for_trigger(3).len(), 5, "seq limit hides newer paths");
    }

    #[test]
    fn shared_key_batch_probes_the_index_exactly_once() {
        use crate::batch::{BatchOutput, BatchScratch, BatchTrigger};
        let (mut store, strands) = setup(TWO_HOP);
        store.declare_indexes(strands.iter());
        for d in 2..7u32 {
            store.apply(&TupleDelta::insert(
                "path",
                Tuple::new(vec![
                    addr(1),
                    addr(d),
                    addr(d),
                    Value::list(vec![addr(1), addr(d)]),
                    Value::Int(3),
                ]),
            ));
        }
        let link_strand = strands
            .iter()
            .find(|s| s.trigger_relation() == "link")
            .unwrap();
        // N triggers, every one probing the same join key (Z = 1).
        const N: usize = 32;
        let deltas: Vec<TupleDelta> = (0..N as u32)
            .map(|s| {
                TupleDelta::insert(
                    "link",
                    Tuple::new(vec![addr(100 + s), addr(1), Value::Int(1)]),
                )
            })
            .collect();
        let triggers: Vec<BatchTrigger> = deltas
            .iter()
            .map(|delta| BatchTrigger {
                delta,
                seq_limit: u64::MAX,
            })
            .collect();
        let mut stats = JoinStats::default();
        let mut scratch = BatchScratch::default();
        let mut out = BatchOutput::default();
        link_strand
            .fire_batch(&store, &triggers, &mut stats, &mut scratch, &mut out)
            .unwrap();
        assert_eq!(
            stats.distinct_probes, 1,
            "one shared key must cost exactly one index probe"
        );
        assert_eq!(stats.logical_probes, N, "logical accounting is per trigger");
        // Every member received the full broadcast match set, identical to
        // firing it alone.
        for (i, delta) in deltas.iter().enumerate() {
            let reference = link_strand.fire(&store, delta, u64::MAX).unwrap();
            assert_eq!(out.for_trigger(i), &reference[..]);
            assert_eq!(out.for_trigger(i).len(), 5);
        }
    }

    #[test]
    fn fire_batch_reports_unbound_head_variables() {
        use crate::batch::{BatchOutput, BatchScratch, BatchTrigger};
        let (store, strands) = setup("r1 out(@S, X) :- q(@S, C).");
        let d = TupleDelta::insert("q", Tuple::new(vec![addr(0), Value::Int(1)]));
        let triggers = [BatchTrigger {
            delta: &d,
            seq_limit: u64::MAX,
        }];
        let mut stats = JoinStats::default();
        let mut scratch = BatchScratch::default();
        let mut out = BatchOutput::default();
        assert!(matches!(
            strands[0].fire_batch(&store, &triggers, &mut stats, &mut scratch, &mut out),
            Err(EvalError::UnboundVariable(v)) if v == "X"
        ));
    }

    #[test]
    fn missing_relation_yields_no_matches() {
        let program = parse_program("r1 out(@S) :- q(@S, C), missing(@S, C).").unwrap();
        // Build a store *without* the `missing` relation.
        let mut store = Store::new();
        store.ensure(RelationSchema::new("q"));
        let strands: Vec<_> = delta_rewrite_full(&program)
            .into_iter()
            .map(CompiledStrand::new)
            .collect();
        let strand = strands
            .iter()
            .find(|s| s.trigger_relation() == "q")
            .unwrap();
        let d = TupleDelta::insert("q", Tuple::new(vec![addr(0), Value::Int(1)]));
        assert!(strand.fire(&store, &d, u64::MAX).unwrap().is_empty());
    }

    #[test]
    fn unbound_head_variable_is_an_error() {
        // Bypass validation deliberately to exercise the runtime error path.
        let (store, strands) = setup("r1 out(@S, X) :- q(@S, C).");
        let d = TupleDelta::insert("q", Tuple::new(vec![addr(0), Value::Int(1)]));
        assert!(matches!(
            strands[0].fire(&store, &d, u64::MAX),
            Err(EvalError::UnboundVariable(v)) if v == "X"
        ));
    }
}
