//! Expression evaluation: variable bindings, arithmetic, comparisons and
//! the builtin `f_*` functions used by NDlog programs.
//!
//! The builtins cover what the paper's programs need — path-vector
//! construction and inspection (`f_cons`, `f_append`, `f_concat`,
//! `f_member`, `f_size`, `f_first`, `f_last`) — plus a handful of numeric
//! helpers.

use ndlog_lang::{BinOp, Expr, Value};
use std::collections::BTreeMap;
use std::fmt;

/// Variable bindings accumulated while evaluating a rule body.
pub type Bindings = BTreeMap<String, Value>;

/// Errors raised while evaluating expressions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EvalError {
    /// A referenced variable is not bound.
    UnboundVariable(String),
    /// An operator was applied to operands of the wrong type.
    TypeMismatch {
        /// What was being evaluated.
        context: String,
    },
    /// An unknown builtin function was called.
    UnknownFunction(String),
    /// A builtin was called with the wrong number of arguments.
    WrongArity {
        /// Function name.
        function: String,
        /// Expected argument count.
        expected: usize,
        /// Actual argument count.
        found: usize,
    },
    /// Division by zero.
    DivisionByZero,
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::UnboundVariable(v) => write!(f, "unbound variable {v}"),
            EvalError::TypeMismatch { context } => write!(f, "type mismatch in {context}"),
            EvalError::UnknownFunction(n) => write!(f, "unknown function {n}"),
            EvalError::WrongArity {
                function,
                expected,
                found,
            } => write!(f, "{function} expects {expected} arguments, got {found}"),
            EvalError::DivisionByZero => write!(f, "division by zero"),
        }
    }
}

impl std::error::Error for EvalError {}

/// Evaluate an expression under the given bindings.
pub fn eval(expr: &Expr, bindings: &Bindings) -> Result<Value, EvalError> {
    match expr {
        Expr::Const(v) => Ok(v.clone()),
        Expr::Var(name) => bindings
            .get(name)
            .cloned()
            .ok_or_else(|| EvalError::UnboundVariable(name.clone())),
        Expr::Binary(op, l, r) => {
            let lv = eval(l, bindings)?;
            let rv = eval(r, bindings)?;
            eval_binop(*op, &lv, &rv)
        }
        Expr::Call(name, args) => {
            let mut vals = Vec::with_capacity(args.len());
            for a in args {
                vals.push(eval(a, bindings)?);
            }
            eval_builtin(name, &vals)
        }
    }
}

/// Evaluate an expression and coerce the result to a boolean (used for
/// filter literals). Numbers are truthy when non-zero, matching the paper's
/// `f_member(P, S) = 0` idiom.
pub fn eval_bool(expr: &Expr, bindings: &Bindings) -> Result<bool, EvalError> {
    match eval(expr, bindings)? {
        Value::Bool(b) => Ok(b),
        Value::Int(i) => Ok(i != 0),
        Value::Float(f) => Ok(f != 0.0),
        _ => Err(EvalError::TypeMismatch {
            context: format!("boolean filter `{expr}`"),
        }),
    }
}

pub(crate) fn eval_binop(op: BinOp, l: &Value, r: &Value) -> Result<Value, EvalError> {
    use BinOp::*;
    match op {
        Add | Sub | Mul | Div => {
            let (a, b) = numeric_pair(op, l, r)?;
            let result = match op {
                Add => a + b,
                Sub => a - b,
                Mul => a * b,
                Div => {
                    if b == 0.0 {
                        return Err(EvalError::DivisionByZero);
                    }
                    a / b
                }
                _ => unreachable!(),
            };
            // Preserve integer typing when both operands were integers and
            // the result is integral.
            if matches!((l, r), (Value::Int(_), Value::Int(_))) && result.fract() == 0.0 {
                Ok(Value::Int(result as i64))
            } else {
                Ok(Value::Float(result))
            }
        }
        Eq => Ok(Value::Bool(l == r)),
        Ne => Ok(Value::Bool(l != r)),
        Lt => Ok(Value::Bool(l < r)),
        Le => Ok(Value::Bool(l <= r)),
        Gt => Ok(Value::Bool(l > r)),
        Ge => Ok(Value::Bool(l >= r)),
        And | Or => {
            let (Value::Bool(a), Value::Bool(b)) = (l, r) else {
                return Err(EvalError::TypeMismatch {
                    context: format!("logical operator {}", op.symbol()),
                });
            };
            Ok(Value::Bool(if op == And { *a && *b } else { *a || *b }))
        }
    }
}

fn numeric_pair(op: BinOp, l: &Value, r: &Value) -> Result<(f64, f64), EvalError> {
    match (l.as_f64(), r.as_f64()) {
        (Some(a), Some(b)) => Ok((a, b)),
        _ => Err(EvalError::TypeMismatch {
            context: format!("arithmetic operator {}", op.symbol()),
        }),
    }
}

/// Evaluate a builtin function. Builtin names may be written with or
/// without the `f_` prefix.
pub fn eval_builtin(name: &str, args: &[Value]) -> Result<Value, EvalError> {
    let short = name.strip_prefix("f_").unwrap_or(name);
    let arity = |expected: usize| -> Result<(), EvalError> {
        if args.len() == expected {
            Ok(())
        } else {
            Err(EvalError::WrongArity {
                function: name.to_string(),
                expected,
                found: args.len(),
            })
        }
    };
    let as_list = |v: &Value| -> Result<Vec<Value>, EvalError> {
        v.as_list()
            .map(<[Value]>::to_vec)
            .ok_or(EvalError::TypeMismatch {
                context: format!("{name} expects a list argument"),
            })
    };
    match short {
        // f_cons(x, list) -> [x | list]
        "cons" | "concatPath" => {
            arity(2)?;
            let mut out = vec![args[0].clone()];
            out.extend(as_list(&args[1])?);
            Ok(Value::list(out))
        }
        // f_append(list, x) -> list ++ [x]
        "append" => {
            arity(2)?;
            let mut out = as_list(&args[0])?;
            out.push(args[1].clone());
            Ok(Value::list(out))
        }
        // f_concat(list, list) -> list ++ list
        "concat" => {
            arity(2)?;
            let mut out = as_list(&args[0])?;
            out.extend(as_list(&args[1])?);
            Ok(Value::list(out))
        }
        // f_member(list, x) -> 1 if x in list else 0
        "member" => {
            arity(2)?;
            let list = as_list(&args[0])?;
            Ok(Value::Int(i64::from(list.contains(&args[1]))))
        }
        // f_size(list) -> length
        "size" => {
            arity(1)?;
            Ok(Value::Int(as_list(&args[0])?.len() as i64))
        }
        // f_first(list) / f_last(list)
        "first" => {
            arity(1)?;
            as_list(&args[0])?
                .first()
                .cloned()
                .ok_or(EvalError::TypeMismatch {
                    context: "f_first of empty list".into(),
                })
        }
        "last" => {
            arity(1)?;
            as_list(&args[0])?
                .last()
                .cloned()
                .ok_or(EvalError::TypeMismatch {
                    context: "f_last of empty list".into(),
                })
        }
        // f_min(a, b) / f_max(a, b) on scalars
        "min" => {
            arity(2)?;
            Ok(if args[0] <= args[1] {
                args[0].clone()
            } else {
                args[1].clone()
            })
        }
        "max" => {
            arity(2)?;
            Ok(if args[0] >= args[1] {
                args[0].clone()
            } else {
                args[1].clone()
            })
        }
        _ => Err(EvalError::UnknownFunction(name.to_string())),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ndlog_lang::Expr;

    fn bind(pairs: &[(&str, Value)]) -> Bindings {
        pairs
            .iter()
            .map(|(k, v)| (k.to_string(), v.clone()))
            .collect()
    }

    #[test]
    fn arithmetic_preserves_integer_type() {
        let b = bind(&[("A", Value::Int(2)), ("B", Value::Int(3))]);
        let e = Expr::bin(BinOp::Add, Expr::var("A"), Expr::var("B"));
        assert_eq!(eval(&e, &b).unwrap(), Value::Int(5));
        let e = Expr::bin(BinOp::Add, Expr::var("A"), Expr::Const(Value::Float(0.5)));
        assert_eq!(eval(&e, &b).unwrap(), Value::Float(2.5));
        let e = Expr::bin(BinOp::Div, Expr::var("B"), Expr::var("A"));
        assert_eq!(eval(&e, &b).unwrap(), Value::Float(1.5));
    }

    #[test]
    fn division_by_zero_errors() {
        let e = Expr::bin(BinOp::Div, Expr::val(1i64), Expr::val(0i64));
        assert_eq!(eval(&e, &Bindings::new()), Err(EvalError::DivisionByZero));
    }

    #[test]
    fn comparisons_and_booleans() {
        let b = bind(&[("C", Value::Float(3.0))]);
        let lt = Expr::bin(BinOp::Lt, Expr::var("C"), Expr::val(5i64));
        assert_eq!(eval(&lt, &b).unwrap(), Value::Bool(true));
        assert!(eval_bool(&lt, &b).unwrap());
        let and = Expr::bin(BinOp::And, lt.clone(), Expr::Const(Value::Bool(false)));
        assert_eq!(eval(&and, &b).unwrap(), Value::Bool(false));
        let or = Expr::bin(BinOp::Or, Expr::Const(Value::Bool(false)), lt);
        assert_eq!(eval(&or, &b).unwrap(), Value::Bool(true));
    }

    #[test]
    fn numeric_truthiness_for_filters() {
        // f_member(...) == 0 style: integers are truthy when non-zero.
        assert!(eval_bool(&Expr::val(1i64), &Bindings::new()).unwrap());
        assert!(!eval_bool(&Expr::val(0i64), &Bindings::new()).unwrap());
        assert!(eval_bool(&Expr::Const(Value::str("x")), &Bindings::new()).is_err());
    }

    #[test]
    fn unbound_variable_reported() {
        assert_eq!(
            eval(&Expr::var("X"), &Bindings::new()),
            Err(EvalError::UnboundVariable("X".into()))
        );
    }

    #[test]
    fn path_vector_builtins() {
        let a0 = Value::addr(0u32);
        let a1 = Value::addr(1u32);
        let a2 = Value::addr(2u32);
        // f_cons(a0, f_cons(a1, nil)) = [a0, a1]
        let l = eval_builtin("f_cons", &[a1.clone(), Value::nil()]).unwrap();
        let l = eval_builtin("f_cons", &[a0.clone(), l]).unwrap();
        assert_eq!(l, Value::list(vec![a0.clone(), a1.clone()]));
        // append / concat
        let l2 = eval_builtin("f_append", &[l.clone(), a2.clone()]).unwrap();
        assert_eq!(l2.as_list().unwrap().len(), 3);
        let l3 = eval_builtin("f_concat", &[l.clone(), l.clone()]).unwrap();
        assert_eq!(l3.as_list().unwrap().len(), 4);
        // member / size / first / last
        assert_eq!(
            eval_builtin("f_member", &[l.clone(), a1.clone()]).unwrap(),
            Value::Int(1)
        );
        assert_eq!(
            eval_builtin("f_member", &[l.clone(), a2.clone()]).unwrap(),
            Value::Int(0)
        );
        assert_eq!(
            eval_builtin("f_size", std::slice::from_ref(&l)).unwrap(),
            Value::Int(2)
        );
        assert_eq!(
            eval_builtin("f_first", std::slice::from_ref(&l)).unwrap(),
            a0
        );
        assert_eq!(eval_builtin("f_last", &[l]).unwrap(), a1);
    }

    #[test]
    fn concat_path_alias() {
        // The paper's f_concatPath behaves like cons of the new hop onto
        // the existing path vector.
        let l = eval_builtin("f_concatPath", &[Value::addr(5u32), Value::nil()]).unwrap();
        assert_eq!(l, Value::list(vec![Value::addr(5u32)]));
    }

    #[test]
    fn scalar_min_max() {
        assert_eq!(
            eval_builtin("f_min", &[Value::Int(3), Value::Float(2.5)]).unwrap(),
            Value::Float(2.5)
        );
        assert_eq!(
            eval_builtin("f_max", &[Value::Int(3), Value::Float(2.5)]).unwrap(),
            Value::Int(3)
        );
    }

    #[test]
    fn builtin_errors() {
        assert!(matches!(
            eval_builtin("f_nonsense", &[]),
            Err(EvalError::UnknownFunction(_))
        ));
        assert!(matches!(
            eval_builtin("f_size", &[Value::Int(1), Value::Int(2)]),
            Err(EvalError::WrongArity { .. })
        ));
        assert!(matches!(
            eval_builtin("f_size", &[Value::Int(1)]),
            Err(EvalError::TypeMismatch { .. })
        ));
        assert!(matches!(
            eval_builtin("f_first", &[Value::nil()]),
            Err(EvalError::TypeMismatch { .. })
        ));
    }

    #[test]
    fn nested_call_evaluation() {
        let b = bind(&[
            ("S", Value::addr(1u32)),
            (
                "P2",
                Value::list(vec![Value::addr(2u32), Value::addr(3u32)]),
            ),
        ]);
        let e = Expr::call("f_cons", vec![Expr::var("S"), Expr::var("P2")]);
        let v = eval(&e, &b).unwrap();
        assert_eq!(v.as_list().unwrap().len(), 3);
        assert_eq!(v.as_list().unwrap()[0], Value::addr(1u32));
    }

    #[test]
    fn error_display() {
        assert!(EvalError::UnboundVariable("X".into())
            .to_string()
            .contains("X"));
        assert!(EvalError::DivisionByZero.to_string().contains("zero"));
    }
}
