//! End-to-end integration tests: NDlog text → parse → validate → plan →
//! distributed execution over a simulated overlay, checked against an
//! independent graph-algorithm oracle (Dijkstra / BFS on the overlay).

use ndlog_core::{plan, DistributedEngine, EngineConfig};
use ndlog_lang::{parse_program, programs, validate, Value};
use ndlog_net::gtitm::{generate, TransitStubConfig};
use ndlog_net::overlay::{Overlay, OverlayConfig};
use ndlog_net::topology::Metric;
use ndlog_net::NodeAddr;
use ndlog_runtime::{Evaluator, Strategy, Tuple};

fn small_overlay() -> Overlay {
    let ts = generate(&TransitStubConfig::small());
    Overlay::random_neighbors(&ts.topology, &OverlayConfig::default())
}

/// A sparser overlay for comparisons that run without aggregate selections
/// (they materialize every cycle-free path).
fn sparse_overlay() -> Overlay {
    // A 6-node underlay (2 transit nodes, one 2-node stub each) keeps the
    // number of cycle-free paths small enough for an exhaustive,
    // selection-free comparison even in debug builds.
    let ts = generate(&TransitStubConfig {
        transit_nodes: 2,
        stubs_per_transit: 1,
        nodes_per_stub: 2,
        ..TransitStubConfig::paper()
    });
    let config = OverlayConfig {
        neighbors_per_node: 2,
        seed: 0xc0ffee,
    };
    Overlay::random_neighbors(&ts.topology, &config)
}

fn load_links(engine: &mut DistributedEngine, overlay: &Overlay, relation: &str, metric: Metric) {
    for l in overlay.links() {
        engine
            .insert_base(
                l.src,
                relation,
                Tuple::new(vec![
                    Value::Addr(l.src),
                    Value::Addr(l.dst),
                    Value::Float(l.cost(metric)),
                ]),
            )
            .unwrap();
    }
}

#[test]
fn distributed_shortest_paths_match_dijkstra_on_the_overlay() {
    let overlay = small_overlay();
    let n = overlay.node_count();
    let query_plan = plan(&programs::shortest_path("")).unwrap();
    let mut config = EngineConfig::default();
    config.node.aggregate_selections = true;
    let mut engine = DistributedEngine::new(overlay.graph.clone(), &[query_plan], config).unwrap();
    load_links(&mut engine, &overlay, "link", Metric::Latency);
    let report = engine.run_to_quiescence().unwrap();
    assert!(report.quiesced, "network must quiesce");

    // Every (source, destination) pair has exactly one shortestPath result
    // stored at the source, and its cost equals Dijkstra over the overlay.
    assert_eq!(engine.result_count("shortestPath"), n * (n - 1));
    for src in overlay.graph.nodes() {
        let oracle = overlay.graph.shortest_distances(src, Metric::Latency);
        for (node, tuple) in engine.results("shortestPath") {
            if node != src || tuple.get(0) != Some(&Value::Addr(src)) {
                continue;
            }
            let dst = tuple.get(1).unwrap().as_addr().unwrap();
            let cost = tuple.get(3).unwrap().as_f64().unwrap();
            let expected = oracle[dst.index()];
            assert!(
                (cost - expected).abs() < 1e-6,
                "cost {src} -> {dst}: engine {cost} vs dijkstra {expected}"
            );
        }
    }
}

#[test]
fn reachability_program_reaches_every_node() {
    let overlay = small_overlay();
    let n = overlay.node_count();
    let query_plan = plan(&programs::reachability("")).unwrap();
    let mut engine = DistributedEngine::new(
        overlay.graph.clone(),
        &[query_plan],
        EngineConfig::default(),
    )
    .unwrap();
    load_links(&mut engine, &overlay, "link", Metric::HopCount);
    engine.run_to_quiescence().unwrap();
    // The overlay is connected, so every ordered pair (including loops via
    // cycles) is reachable.
    assert_eq!(engine.result_count("reachable"), n * n);
}

#[test]
fn hand_written_program_runs_distributed() {
    // A two-rule "neighbor of neighbor" discovery program written inline.
    let src = r#"
        materialize(link, keys(1,2)).
        materialize(twoHop, keys(1,2)).
        n1 twoHop(@S,@D) :- #link(@S,@Z,C1), nbr(@Z,@D).
        n2 nbr(@S,@D) :- #link(@S,@D,C).
        query twoHop(@S,@D).
    "#;
    let program = parse_program(src).unwrap();
    assert!(validate(&program).is_empty());
    let query_plan = plan(&program).unwrap();

    let overlay = small_overlay();
    let mut engine = DistributedEngine::new(
        overlay.graph.clone(),
        &[query_plan],
        EngineConfig::default(),
    )
    .unwrap();
    load_links(&mut engine, &overlay, "link", Metric::HopCount);
    engine.run_to_quiescence().unwrap();

    // Oracle: S has a two-hop entry for D iff some neighbor Z of S has D as
    // a neighbor.
    for (node, tuple) in engine.results("twoHop") {
        let s = tuple.get(0).unwrap().as_addr().unwrap();
        let d = tuple.get(1).unwrap().as_addr().unwrap();
        assert_eq!(node, s, "results live at their location specifier");
        let ok = overlay
            .graph
            .neighbors(s)
            .any(|z| overlay.graph.has_link(z, d));
        assert!(ok, "twoHop({s},{d}) has no witness in the overlay");
    }
    assert!(engine.result_count("twoHop") > 0);
}

#[test]
fn centralized_and_distributed_agree_on_the_same_overlay() {
    let overlay = sparse_overlay();
    let program = programs::shortest_path("");
    let query_plan = plan(&program).unwrap();
    let mut engine = DistributedEngine::new(
        overlay.graph.clone(),
        &[query_plan],
        EngineConfig::default(),
    )
    .unwrap();
    load_links(&mut engine, &overlay, "link", Metric::Reliability);

    let mut evaluator = Evaluator::new(&program).unwrap();
    for l in overlay.links() {
        evaluator.insert_fact(
            "link",
            Tuple::new(vec![
                Value::Addr(l.src),
                Value::Addr(l.dst),
                Value::Float(l.cost(Metric::Reliability)),
            ]),
        );
    }

    engine.run_to_quiescence().unwrap();
    evaluator.run(Strategy::Pipelined).unwrap();

    let mut distributed: Vec<Tuple> = engine
        .results("shortestPath")
        .into_iter()
        .map(|(_, t)| t)
        .collect();
    let mut centralized = evaluator.results("shortestPath");
    distributed.sort();
    centralized.sort();
    assert_eq!(distributed, centralized);
}

#[test]
fn distance_vector_program_runs_on_the_overlay() {
    let overlay = small_overlay();
    let query_plan = plan(&programs::distance_vector("", 12)).unwrap();
    let mut config = EngineConfig::default();
    config.node.aggregate_selections = true;
    let mut engine = DistributedEngine::new(overlay.graph.clone(), &[query_plan], config).unwrap();
    load_links(&mut engine, &overlay, "link", Metric::HopCount);
    engine.run_to_quiescence().unwrap();
    let n = overlay.node_count();
    // Every node learns a best route to every other node (self-routes may
    // also exist via cycles).
    assert!(engine.result_count("bestRoute") >= n * (n - 1));
    // Next hops are always direct neighbors.
    for (node, tuple) in engine.results("bestRoute") {
        let next = tuple.get(2).unwrap().as_addr().unwrap();
        if next != node {
            assert!(overlay.graph.has_link(node, next));
        }
    }
}

#[test]
fn magic_destination_variant_limits_results() {
    let overlay = small_overlay();
    let program = programs::shortest_path_magic_dst("");
    let query_plan = plan(&program).unwrap();
    let mut config = EngineConfig::default();
    config.node.aggregate_selections = true;
    let mut engine = DistributedEngine::new(overlay.graph.clone(), &[query_plan], config).unwrap();
    load_links(&mut engine, &overlay, "link", Metric::HopCount);
    // Only destination 3 is of interest: the magic table lives at the
    // destination (its location specifier is @D), so it is seeded there.
    let dst = NodeAddr(3);
    engine
        .insert_base(dst, "magicDst", Tuple::new(vec![Value::Addr(dst)]))
        .unwrap();
    engine.run_to_quiescence().unwrap();
    let n = overlay.node_count();
    // Exactly one shortest path per source towards the magic destination.
    assert_eq!(engine.result_count("shortestPath"), n - 1);
    for (_, tuple) in engine.results("shortestPath") {
        assert_eq!(tuple.get(1), Some(&Value::Addr(dst)));
    }
    // And it is far cheaper than the all-pairs run on the same overlay.
    let all_pairs_plan = plan(&programs::shortest_path("ap")).unwrap();
    let mut config = EngineConfig::default();
    config.node.aggregate_selections = true;
    let mut all_pairs =
        DistributedEngine::new(overlay.graph.clone(), &[all_pairs_plan], config).unwrap();
    load_links(&mut all_pairs, &overlay, "link_ap", Metric::HopCount);
    all_pairs.run_to_quiescence().unwrap();
    assert!(engine.stats().total_bytes() < all_pairs.stats().total_bytes());
}
