//! Fault-injection robustness properties.
//!
//! A seeded [`FaultPlan`] subjects seeded random topologies to message
//! loss, duplication, delivery jitter, node crash/rejoin and a full
//! network partition, while periodic soft-state refresh re-announces the
//! seed facts so every lost message is repaired by a later refresh cycle.
//! This test pins the contract from Section 4.2 of the paper (soft-state
//! refresh + TTL expiry make the computation self-healing):
//!
//! * after the fault schedule quiesces, every node's routing state equals
//!   the Dijkstra oracle on the healed topology — exactly: right costs,
//!   no missing destinations, no stale extras;
//! * the same fixpoint is reached by a centralized evaluation (where
//!   tractable) under every strategy of Section 3: SN, BSN and PSN;
//! * runs at 1, 2 and 4 executor threads are bit-for-bit identical,
//!   fault decisions included (the fault RNG is keyed, not streamed);
//! * the fault plan actually bit: messages were dropped, and dropped
//!   insertions were healed by refresh.

use ndlog_core::consistency::{check_against_centralized, check_bitwise_identical};
use ndlog_core::{plan, DistributedEngine, EngineConfig, RefreshConfig};
use ndlog_lang::{programs, Value};
use ndlog_net::gtitm::{generate, TransitStubConfig};
use ndlog_net::overlay::{Overlay, OverlayConfig};
use ndlog_net::sim::ms;
use ndlog_net::topology::Metric;
use ndlog_net::{FaultPlan, LinkFaults, NodeAddr};
use ndlog_runtime::{Evaluator, Strategy, Tuple};
use std::collections::BTreeSet;

/// Soft-state TTL declared by the program under test (seconds).
const TTL_S: f64 = 5.0;
/// Refresh re-announcement interval (seconds).
const REFRESH_S: f64 = 2.0;

fn link(a: NodeAddr, b: NodeAddr, c: f64) -> Tuple {
    Tuple::new(vec![Value::Addr(a), Value::Addr(b), Value::Float(c)])
}

/// All stored `shortestPath` tuples, node-independent (Reliability costs
/// are tie-free, so the full-tuple fixpoint is schedule-independent).
fn result_set(engine: &DistributedEngine) -> BTreeSet<Tuple> {
    engine
        .results("shortestPath")
        .into_iter()
        .map(|(_, t)| t)
        .collect()
}

/// The post-quiescence store must equal the Dijkstra oracle *exactly*:
/// every tuple's cost matches, and every reachable destination is present
/// (a lossy run that silently dropped a result forever would otherwise
/// pass a cost-only check).
fn assert_matches_oracle(engine: &DistributedEngine, overlay: &Overlay, context: &str) {
    let mut expected = 0usize;
    for src in overlay.graph.nodes() {
        let oracle = overlay.graph.shortest_distances(src, Metric::Reliability);
        for dst in overlay.graph.nodes() {
            if dst != src && oracle[dst.index()].is_finite() {
                expected += 1;
            }
        }
        for (node, tuple) in engine.results("shortestPath") {
            if node != src {
                continue;
            }
            let dst = tuple.get(1).unwrap().as_addr().unwrap();
            let cost = tuple.get(3).unwrap().as_f64().unwrap();
            assert!(
                (cost - oracle[dst.index()]).abs() < 1e-6,
                "{context}: cost mismatch {src}->{dst}"
            );
        }
    }
    assert_eq!(
        engine.results("shortestPath").len(),
        expected,
        "{context}: result count differs from the oracle's reachable pairs"
    );
}

/// Build, seed and run one engine over `overlay` with the given fault
/// plan and refresh horizon.
fn run_faulty(
    overlay: &Overlay,
    fault: FaultPlan,
    horizon_s: f64,
    threads: usize,
    context: &str,
) -> DistributedEngine {
    let program = programs::shortest_path_soft("", TTL_S);
    let query_plan = plan(&program).unwrap();
    let mut config = EngineConfig::default();
    config.node.aggregate_selections = true;
    config.parallelism = threads;
    config.max_seconds = horizon_s + 30.0;
    config.fault = Some(fault);
    config.refresh = Some(RefreshConfig {
        interval_seconds: REFRESH_S,
        horizon_seconds: horizon_s,
    });
    let mut engine = DistributedEngine::new(overlay.graph.clone(), &[query_plan], config).unwrap();
    for l in overlay.links() {
        engine
            .insert_base(
                l.src,
                "link",
                link(l.src, l.dst, l.cost(Metric::Reliability)),
            )
            .unwrap();
    }
    let report = engine.run_to_quiescence().unwrap();
    assert!(report.quiesced, "{context}: did not quiesce");
    engine
}

#[test]
fn lossy_churning_runs_heal_to_the_oracle_under_every_strategy() {
    // (name, transit-stub shape, overlay neighbors, centralized
    // comparison feasible) — the same grid the coalescing property uses.
    let topologies: [(&str, TransitStubConfig, usize, bool); 2] = [
        ("small", TransitStubConfig::small(), 4, false),
        (
            "sparse",
            TransitStubConfig {
                transit_nodes: 2,
                stubs_per_transit: 1,
                nodes_per_stub: 3,
                ..TransitStubConfig::paper()
            },
            2,
            true,
        ),
    ];
    for (name, ts_config, neighbors, centralized_ok) in topologies {
        for seed in [7_u64, 0xbeef] {
            let ts = generate(&ts_config);
            let overlay_config = OverlayConfig {
                neighbors_per_node: neighbors,
                seed,
            };
            let overlay = Overlay::random_neighbors(&ts.topology, &overlay_config);
            let addrs: Vec<NodeAddr> = overlay.graph.nodes().collect();

            // 15% loss + duplication + jitter until t=4s, and one node
            // crashing at 2s / rejoining at 3.5s. Refresh must outlive
            // the faults by TTL (stale state expires) plus a few cycles.
            let crashed = addrs[1];
            let fault = || {
                FaultPlan::new(seed ^ 0xfau64)
                    .with_default_faults(LinkFaults {
                        loss: 0.15,
                        duplicate: 0.05,
                        jitter_ms: 1.5,
                    })
                    .with_active_until(ms(4_000.0))
                    .with_crash(crashed, ms(2_000.0), ms(3_500.0))
            };
            let horizon_s = 4.0 + TTL_S + 4.0 * REFRESH_S;
            let context = format!("topology {name}, seed {seed:#x}");

            let baseline = run_faulty(&overlay, fault(), horizon_s, 1, &context);
            for threads in [2, 4] {
                let parallel = run_faulty(&overlay, fault(), horizon_s, threads, &context);
                check_bitwise_identical(&baseline, &parallel)
                    .unwrap_or_else(|e| panic!("{context}, {threads} threads: {e}"));
                assert_eq!(
                    baseline.fault_stats(),
                    parallel.fault_stats(),
                    "{context}, {threads} threads: fault decisions diverged"
                );
            }

            // The faults bit, and refresh healed what they broke.
            let stats = baseline.fault_stats();
            assert!(stats.dropped > 0, "{context}: no messages dropped");
            assert!(stats.crash_drops > 0, "{context}: crash window missed");
            let repair = baseline.fault_repair_report();
            assert!(repair.dropped_inserts > 0, "{context}: no insertions lost");
            assert!(repair.repaired > 0, "{context}: refresh repaired nothing");
            assert!(repair.refresh_ticks > 0, "{context}: refresh never ran");

            assert_matches_oracle(&baseline, &overlay, &context);

            if !centralized_ok {
                continue;
            }
            let mut base = Vec::new();
            for l in overlay.links() {
                base.push((
                    "link".to_string(),
                    link(l.src, l.dst, l.cost(Metric::Reliability)),
                ));
            }
            check_against_centralized(
                &baseline,
                &programs::shortest_path_soft("", TTL_S),
                &base,
                "shortestPath",
            )
            .unwrap_or_else(|e| panic!("{context}: {e}"));

            // The same fixpoint under every Section 3 strategy.
            let fixpoint = result_set(&baseline);
            let program = programs::shortest_path_soft("", TTL_S);
            for strategy in [
                Strategy::SemiNaive,
                Strategy::Buffered { batch: 16 },
                Strategy::Pipelined,
            ] {
                let mut evaluator = Evaluator::new(&program).unwrap();
                for (rel, tuple) in &base {
                    evaluator.insert_fact(rel, tuple.clone());
                }
                evaluator.run(strategy).unwrap();
                let central: BTreeSet<Tuple> =
                    evaluator.results("shortestPath").into_iter().collect();
                assert_eq!(
                    central, fixpoint,
                    "{context}: {strategy:?} centralized fixpoint differs from the faulty \
                     distributed run"
                );
            }
        }
    }
}

#[test]
fn full_partition_then_heal_converges() {
    let ts = generate(&TransitStubConfig::small());
    let overlay_config = OverlayConfig {
        neighbors_per_node: 4,
        seed: 0xbeef,
    };
    let overlay = Overlay::random_neighbors(&ts.topology, &overlay_config);
    let addrs: Vec<NodeAddr> = overlay.graph.nodes().collect();
    let side_a = &addrs[..addrs.len() / 2];

    // The whole network splits in two from 1s to 3s while 10% loss runs
    // until 4s; once the partition heals, the next refresh cycles carry
    // the missed announcements across.
    let fault = || {
        FaultPlan::new(0x9a97)
            .with_default_faults(LinkFaults {
                loss: 0.10,
                duplicate: 0.05,
                jitter_ms: 1.0,
            })
            .with_active_until(ms(4_000.0))
            .with_partition(ms(1_000.0), ms(3_000.0), side_a.iter().copied())
    };
    let horizon_s = 4.0 + TTL_S + 4.0 * REFRESH_S;
    let context = "full partition";

    let baseline = run_faulty(&overlay, fault(), horizon_s, 1, context);
    for threads in [2, 4] {
        let parallel = run_faulty(&overlay, fault(), horizon_s, threads, context);
        check_bitwise_identical(&baseline, &parallel)
            .unwrap_or_else(|e| panic!("{context}, {threads} threads: {e}"));
    }

    let stats = baseline.fault_stats();
    assert!(stats.partition_drops > 0, "partition cut no messages");
    assert_eq!(stats.partitions_healed, 1);
    assert!(baseline.fault_repair_report().repaired > 0);
    assert_matches_oracle(&baseline, &overlay, context);
}
