//! Property-based tests (proptest) for the core invariants:
//!
//! * **Theorem 1** — SN, BSN and PSN compute the same fixpoint on random
//!   graphs;
//! * **Theorem 3** — applying a random sequence of insertions and deletions
//!   incrementally yields the same state as evaluating the final base data
//!   from scratch;
//! * aggregate views always equal a from-scratch recomputation of the
//!   aggregate over their inputs;
//! * parsing is stable under pretty-printing (display → parse round-trip);
//! * link-restricted programs localize to single-site rule bodies.

use ndlog_lang::localize::{is_localized, localize};
use ndlog_lang::{parse_program, programs, Value};
use ndlog_runtime::{AggregateView, Evaluator, Strategy as EvalStrategy, Tuple, TupleDelta};
use proptest::prelude::*;
use std::collections::BTreeSet;

/// A random directed edge list over `n` nodes (no self-loops).
fn edges_strategy(max_nodes: u32, max_edges: usize) -> impl Strategy<Value = Vec<(u32, u32, u8)>> {
    (2..=max_nodes).prop_flat_map(move |n| {
        prop::collection::vec(
            (0..n, 0..n, 1u8..10u8).prop_filter("no self-loops", |(a, b, _)| a != b),
            1..=max_edges,
        )
    })
}

fn link(a: u32, b: u32, c: f64) -> Tuple {
    Tuple::new(vec![Value::addr(a), Value::addr(b), Value::Float(c)])
}

fn run_reachability(edges: &[(u32, u32, u8)], strategy: EvalStrategy) -> BTreeSet<Tuple> {
    let program = programs::reachability("");
    let mut eval = Evaluator::new(&program).unwrap();
    for &(a, b, c) in edges {
        eval.insert_fact("link", link(a, b, f64::from(c)));
    }
    eval.run(strategy).unwrap();
    eval.results("reachable").into_iter().collect()
}

/// Oracle: transitive closure by iterated squaring over the edge set.
fn closure_oracle(edges: &[(u32, u32, u8)]) -> BTreeSet<(u32, u32)> {
    let mut reach: BTreeSet<(u32, u32)> = edges.iter().map(|&(a, b, _)| (a, b)).collect();
    loop {
        let mut next = reach.clone();
        for &(a, b) in &reach {
            for &(c, d) in &reach {
                if b == c {
                    next.insert((a, d));
                }
            }
        }
        if next == reach {
            return reach;
        }
        reach = next;
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Theorem 1: the three evaluation strategies produce identical result
    /// sets, and they match an independent transitive-closure oracle.
    #[test]
    fn theorem1_strategies_agree_on_random_graphs(edges in edges_strategy(7, 14)) {
        let psn = run_reachability(&edges, EvalStrategy::Pipelined);
        let sn = run_reachability(&edges, EvalStrategy::SemiNaive);
        let bsn = run_reachability(&edges, EvalStrategy::Buffered { batch: 2 });
        prop_assert_eq!(&psn, &sn);
        prop_assert_eq!(&psn, &bsn);

        let oracle = closure_oracle(&edges);
        let computed: BTreeSet<(u32, u32)> = psn
            .iter()
            .map(|t| {
                (
                    t.get(0).unwrap().as_addr().unwrap().0,
                    t.get(1).unwrap().as_addr().unwrap().0,
                )
            })
            .collect();
        prop_assert_eq!(computed, oracle);
    }

    /// Theorem 3: incremental maintenance of a random update sequence ends
    /// in the same state as evaluating the final base data from scratch.
    #[test]
    fn theorem3_incremental_equals_from_scratch(
        initial in edges_strategy(6, 10),
        updates in prop::collection::vec((0u32..6, 0u32..6, 1u8..10u8, prop::bool::ANY), 1..8),
    ) {
        let program = programs::reachability("");
        let mut incremental = Evaluator::new(&program).unwrap();
        let mut base: BTreeSet<(u32, u32, u8)> = BTreeSet::new();
        for &(a, b, c) in &initial {
            if base.insert((a, b, c)) {
                incremental.insert_fact("link", link(a, b, f64::from(c)));
            }
        }
        incremental.run(EvalStrategy::Pipelined).unwrap();

        for &(a, b, c, insert) in &updates {
            if a == b {
                continue;
            }
            if insert {
                if base.insert((a, b, c)) {
                    incremental.update(TupleDelta::insert("link", link(a, b, f64::from(c)))).unwrap();
                }
            } else if base.remove(&(a, b, c)) {
                incremental.update(TupleDelta::delete("link", link(a, b, f64::from(c)))).unwrap();
            }
        }

        let mut scratch = Evaluator::new(&program).unwrap();
        for &(a, b, c) in &base {
            scratch.insert_fact("link", link(a, b, f64::from(c)));
        }
        scratch.run(EvalStrategy::Pipelined).unwrap();

        let inc: BTreeSet<Tuple> = incremental.results("reachable").into_iter().collect();
        let scr: BTreeSet<Tuple> = scratch.results("reachable").into_iter().collect();
        prop_assert_eq!(inc, scr);
    }

    /// The incremental aggregate view equals a from-scratch recomputation
    /// over whatever inputs remain after a random insert/delete sequence.
    #[test]
    fn aggregate_view_matches_recomputation(
        ops in prop::collection::vec((0u32..4, 1i64..30, prop::bool::ANY), 1..40),
    ) {
        let rule = parse_program("a best(@G, min<C>) :- obs(@G, C).").unwrap().rules[0].clone();
        let mut view = AggregateView::from_rule(&rule).unwrap();
        let store = ndlog_runtime::Store::new();
        let mut live: Vec<(u32, i64)> = Vec::new();
        for &(g, c, insert) in &ops {
            let tuple = Tuple::new(vec![Value::addr(g), Value::Int(c)]);
            if insert {
                live.push((g, c));
                view.apply(&store, &TupleDelta::insert("obs", tuple));
            } else if let Some(pos) = live.iter().position(|&(lg, lc)| lg == g && lc == c) {
                live.remove(pos);
                view.apply(&store, &TupleDelta::delete("obs", tuple));
            } else {
                // Deleting something never inserted must be a no-op.
                view.apply(&store, &TupleDelta::delete("obs", tuple));
            }
        }
        for g in 0u32..4 {
            let expected = live.iter().filter(|&&(lg, _)| lg == g).map(|&(_, c)| c).min();
            let probe = Tuple::new(vec![Value::addr(g), Value::Int(0)]);
            let actual = view.current_for(&probe).and_then(|v| v.as_int());
            prop_assert_eq!(actual, expected);
        }
    }

    /// Pretty-printing then re-parsing a program yields the same rules.
    #[test]
    fn parser_display_roundtrip(seed in 0u32..4) {
        let program = match seed {
            0 => programs::shortest_path(""),
            1 => programs::shortest_path_magic_dst("m"),
            2 => programs::shortest_path_source_routing("sd"),
            _ => programs::distance_vector("dv", 16),
        };
        let printed = program.to_string();
        let reparsed = parse_program(&printed).unwrap();
        prop_assert_eq!(program.rules, reparsed.rules);
        prop_assert_eq!(program.queries, reparsed.queries);
    }

    /// Localization always yields a program whose rule bodies are
    /// single-site, and preserves the centralized fixpoint.
    #[test]
    fn localization_preserves_results(edges in edges_strategy(6, 10)) {
        let program = programs::shortest_path("");
        let localized = localize(&program).unwrap();
        prop_assert!(is_localized(&localized));

        // Compare (source, destination, cost): when two paths tie on cost,
        // the original and localized programs may legitimately keep
        // different representative path vectors.
        let run = |p: &ndlog_lang::Program| -> BTreeSet<(Value, Value, Value)> {
            let mut eval = Evaluator::new(p).unwrap();
            for &(a, b, c) in &edges {
                eval.insert_fact("link", link(a, b, f64::from(c)));
                eval.insert_fact("link", link(b, a, f64::from(c)));
            }
            eval.run(EvalStrategy::Pipelined).unwrap();
            eval.results("shortestPath")
                .into_iter()
                .map(|t| {
                    (
                        t.get(0).unwrap().clone(),
                        t.get(1).unwrap().clone(),
                        t.get(3).unwrap().clone(),
                    )
                })
                .collect()
        };
        prop_assert_eq!(run(&program), run(&localized));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Batch-delta evaluation — with and without key-grouped probe
    /// sharing — is semantics-identical to the tuple-at-a-time reference
    /// loop for every strategy: identical stores (tuples with their
    /// derivation counts, timestamps and expiries) and identical
    /// `EvalStats` *modulo probe-count accounting* against the tuple loop.
    /// The probe counters (`logical_probes`, `distinct_probes`, `scans`,
    /// `tuples_examined`) are deliberately excluded from the batch-vs-tuple
    /// comparison: a batch fires every queued delta against one store
    /// snapshot — buckets are probed before, rather than after, sibling
    /// insertions that the PSN visibility limit would hide either way —
    /// and a batch invalidated by a mid-batch removal re-fires its
    /// remainder, re-counting those probes. Between the grouped and
    /// ungrouped batch runs, however, the batches are identical, so every
    /// *logical* counter (`logical_probes`, `scans`, `tuples_examined`)
    /// must match exactly; grouping may only shrink `distinct_probes`
    /// (`distinct ≤ logical` everywhere, with equality on the ungrouped
    /// run). Everything else (iterations, processed tuples, derivations,
    /// redundant derivations) must match exactly across all three modes,
    /// as must the final stores down to sequence numbers.
    #[test]
    fn grouped_and_ungrouped_batches_match_tuple_at_a_time(
        edges in edges_strategy(6, 10),
        updates in prop::collection::vec((0u32..6, 0u32..6, 1u8..6u8, prop::bool::ANY), 0..6),
    ) {
        let program = programs::shortest_path("");
        for strategy in [
            EvalStrategy::SemiNaive,
            EvalStrategy::Buffered { batch: 2 },
            EvalStrategy::Pipelined,
        ] {
            let run = |batching: bool, grouping: bool| {
                let mut eval = Evaluator::new(&program).unwrap();
                eval.set_batching(batching);
                eval.set_probe_grouping(grouping);
                for &(a, b, c) in &edges {
                    eval.insert_fact("link", link(a, b, f64::from(c)));
                    eval.insert_fact("link", link(b, a, f64::from(c)));
                }
                let mut stats = eval.run(strategy).unwrap();
                // A post-fixpoint burst with deletions exercises the
                // mid-batch invalidation + DRed path in the batched runs.
                for &(a, b, c, insert) in &updates {
                    if a == b {
                        continue;
                    }
                    let delta = if insert {
                        TupleDelta::insert("link", link(a, b, f64::from(c)))
                    } else {
                        TupleDelta::delete("link", link(a, b, f64::from(c)))
                    };
                    stats += eval.update(delta).unwrap();
                }
                (eval, stats)
            };
            let (grouped, grouped_stats) = run(true, true);
            let (ungrouped, ungrouped_stats) = run(true, false);
            let (reference, reference_stats) = run(false, true);

            // Grouped vs ungrouped batches: identical logical probe
            // accounting, grouping only shrinks the executed lookups.
            prop_assert_eq!(
                grouped_stats.logical_probes, ungrouped_stats.logical_probes,
                "{:?}: logical probe counts diverge under grouping", strategy
            );
            prop_assert_eq!(
                grouped_stats.scans, ungrouped_stats.scans,
                "{:?}: scan counts diverge under grouping", strategy
            );
            prop_assert_eq!(
                grouped_stats.tuples_examined, ungrouped_stats.tuples_examined,
                "{:?}: tuples-examined diverge under grouping", strategy
            );
            prop_assert!(
                grouped_stats.distinct_probes <= grouped_stats.logical_probes,
                "{:?}: distinct probes exceed logical", strategy
            );
            prop_assert!(
                reference_stats.distinct_probes <= reference_stats.logical_probes,
                "{:?}: tuple-path distinct probes exceed logical", strategy
            );

            for (label, this, this_stats) in [
                ("ungrouped batch", &ungrouped, &ungrouped_stats),
                ("tuple-at-a-time", &reference, &reference_stats),
            ] {
                prop_assert_eq!(
                    grouped_stats.iterations, this_stats.iterations,
                    "{:?}/{}: iteration counts diverge", strategy, label
                );
                prop_assert_eq!(
                    grouped_stats.tuples_processed, this_stats.tuples_processed,
                    "{:?}/{}: processed-tuple counts diverge", strategy, label
                );
                prop_assert_eq!(
                    grouped_stats.derivations, this_stats.derivations,
                    "{:?}/{}: derivation counts diverge", strategy, label
                );
                prop_assert_eq!(
                    grouped_stats.redundant_derivations, this_stats.redundant_derivations,
                    "{:?}/{}: redundant-derivation counts diverge", strategy, label
                );

                prop_assert_eq!(
                    grouped.store().current_seq(),
                    this.store().current_seq(),
                    "{:?}/{}: timestamp counters diverge", strategy, label
                );
                let names: Vec<String> = this
                    .store()
                    .relation_names()
                    .map(str::to_string)
                    .collect();
                let grouped_names: Vec<String> = grouped
                    .store()
                    .relation_names()
                    .map(str::to_string)
                    .collect();
                prop_assert_eq!(&names, &grouped_names);
                for name in &names {
                    let a: Vec<_> = grouped.store().relation(name).unwrap().iter().collect();
                    let b: Vec<_> = this.store().relation(name).unwrap().iter().collect();
                    prop_assert_eq!(
                        a, b,
                        "{:?}: relation {} diverges between grouped batch and {}",
                        strategy, name, label
                    );
                }
            }
        }
    }
}
