//! Distributed eventual-consistency tests (Theorem 4 and Section 4.2),
//! plus the determinism property of the parallel epoch executor.
//!
//! The distributed engine, running over FIFO links, must reach the same
//! fixpoint a centralized evaluation over the (final) base data reaches —
//! both for a static network and across bursts of link-cost updates. And a
//! run sharded over N executor threads must be *bit-for-bit identical* to
//! the sequential run: same stores (tuples, derivation counts,
//! timestamps), same network statistics (the full message trace), same
//! per-node evaluation statistics, same result log.

use ndlog_core::consistency::{
    check_against_centralized, check_bitwise_identical, check_location_placement,
};
use ndlog_core::{plan, DistributedEngine, EngineConfig, UpdateWorkload};
use ndlog_lang::{programs, Value};
use ndlog_net::gtitm::{generate, TransitStubConfig};
use ndlog_net::overlay::{Overlay, OverlayConfig};
use ndlog_net::topology::Metric;
use ndlog_runtime::Tuple;
use std::collections::BTreeMap;

fn small_overlay() -> Overlay {
    let ts = generate(&TransitStubConfig::small());
    Overlay::random_neighbors(&ts.topology, &OverlayConfig::default())
}

/// A sparser overlay (2 neighbors per node) used by the tests that run
/// *without* aggregate selections: those materialize every cycle-free path,
/// which is only tractable on a sparse graph.
fn sparse_overlay() -> Overlay {
    // A 6-node underlay (2 transit nodes, one 2-node stub each) keeps the
    // number of cycle-free paths small enough for an exhaustive,
    // selection-free comparison even in debug builds.
    let ts = generate(&TransitStubConfig {
        transit_nodes: 2,
        stubs_per_transit: 1,
        nodes_per_stub: 2,
        ..TransitStubConfig::paper()
    });
    let config = OverlayConfig {
        neighbors_per_node: 2,
        seed: 0xc0ffee,
    };
    Overlay::random_neighbors(&ts.topology, &config)
}

fn link(a: ndlog_net::NodeAddr, b: ndlog_net::NodeAddr, c: f64) -> Tuple {
    Tuple::new(vec![Value::Addr(a), Value::Addr(b), Value::Float(c)])
}

#[test]
fn theorem4_static_network_reaches_the_centralized_fixpoint() {
    let overlay = sparse_overlay();
    let program = programs::shortest_path("");
    let query_plan = plan(&program).unwrap();
    // Aggregate selections off so that every derivable tuple is materialized
    // and the comparison is exact.
    let mut engine = DistributedEngine::new(
        overlay.graph.clone(),
        &[query_plan],
        EngineConfig::default(),
    )
    .unwrap();
    let mut base = Vec::new();
    // Reliability costs carry per-link random noise, so path costs are
    // distinct and the tie-free comparison below is exact.
    for l in overlay.links() {
        let t = link(l.src, l.dst, l.cost(Metric::Reliability));
        engine.insert_base(l.src, "link", t.clone()).unwrap();
        base.push(("link".to_string(), t));
    }
    let report = engine.run_to_quiescence().unwrap();
    assert!(report.quiesced);
    let count = check_against_centralized(&engine, &program, &base, "shortestPath")
        .expect("distributed == centralized");
    let n = overlay.node_count();
    assert_eq!(count, n * (n - 1));
    check_location_placement(&engine, "shortestPath").expect("placement invariant");
    check_location_placement(&engine, "path").expect("placement invariant");
}

#[test]
fn theorem4_with_aggregate_selections_costs_match() {
    // With pruning on, the engine stores fewer path tuples, but the final
    // shortest-path *costs* still match the centralized fixpoint.
    let overlay = small_overlay();
    let program = programs::shortest_path("");
    let query_plan = plan(&program).unwrap();
    let mut config = EngineConfig::default();
    config.node.aggregate_selections = true;
    let mut engine = DistributedEngine::new(overlay.graph.clone(), &[query_plan], config).unwrap();
    for l in overlay.links() {
        engine
            .insert_base(l.src, "link", link(l.src, l.dst, l.cost(Metric::Latency)))
            .unwrap();
    }
    engine.run_to_quiescence().unwrap();

    for src in overlay.graph.nodes() {
        let oracle = overlay.graph.shortest_distances(src, Metric::Latency);
        for (node, tuple) in engine.results("shortestPath") {
            if node != src {
                continue;
            }
            let dst = tuple.get(1).unwrap().as_addr().unwrap();
            let cost = tuple.get(3).unwrap().as_f64().unwrap();
            assert!((cost - oracle[dst.index()]).abs() < 1e-6);
        }
    }
}

#[test]
fn bursty_updates_converge_to_the_final_state() {
    // The bursty update model of Section 4: bursts of cost changes followed
    // by quiescence. After the final burst the distributed state must match
    // a from-scratch evaluation over the final link costs (run without
    // aggregate selections so every alternative path is retained and the
    // comparison is exact — hence the sparse overlay).
    let overlay = sparse_overlay();
    let program = programs::shortest_path("");
    let query_plan = plan(&program).unwrap();
    let mut engine = DistributedEngine::new(
        overlay.graph.clone(),
        &[query_plan],
        EngineConfig::default(),
    )
    .unwrap();
    let links = overlay.links();
    let metric = Metric::Reliability;
    let mut current: BTreeMap<(ndlog_net::NodeAddr, ndlog_net::NodeAddr), f64> = BTreeMap::new();
    for l in &links {
        engine
            .insert_base(l.src, "link", link(l.src, l.dst, l.cost(metric)))
            .unwrap();
        current.insert((l.src, l.dst), l.cost(metric));
    }
    engine.run_to_quiescence().unwrap();

    let mut workload = UpdateWorkload::paper(&links, metric, 99);
    for _ in 0..3 {
        for update in workload.burst() {
            engine.apply_link_update("link", &update).unwrap();
            current.insert((update.a, update.b), update.new_cost);
            current.insert((update.b, update.a), update.new_cost);
        }
        // Quiescence between bursts (the bursty model's assumption).
        let report = engine.run_to_quiescence().unwrap();
        assert!(report.quiesced);
    }

    // A pure deletion burst: another 10% of links disappear outright (no
    // re-insertion), exercising the DRed over-delete/re-derive pass across
    // node boundaries.
    for update in workload.burst() {
        let cost = update.old_cost;
        engine
            .delete_base(update.a, "link", link(update.a, update.b, cost))
            .unwrap();
        engine
            .delete_base(update.b, "link", link(update.b, update.a, cost))
            .unwrap();
        current.remove(&(update.a, update.b));
        current.remove(&(update.b, update.a));
    }
    let report = engine.run_to_quiescence().unwrap();
    assert!(report.quiesced);

    let base: Vec<(String, Tuple)> = current
        .iter()
        .map(|((s, d), c)| ("link".to_string(), link(*s, *d, *c)))
        .collect();
    check_against_centralized(&engine, &program, &base, "shortestPath")
        .expect("eventual consistency after bursts");
}

/// Determinism property of the parallel epoch executor: across seeds ×
/// topologies, evaluating with 1, 2 and 4 executor threads produces final
/// stores, network statistics (`NetStats`, i.e. the full message trace)
/// and per-node evaluation statistics (`EvalStats`) that are bit-for-bit
/// identical to the sequential engine's — including through an update
/// burst, which exercises deletions and rederivation.
#[test]
fn parallel_execution_is_deterministic_across_seeds_and_topologies() {
    // (name, transit-stub shape, overlay neighbors) — a denser and a
    // sparser topology, regenerated per seed.
    let topologies: [(&str, TransitStubConfig, usize); 2] = [
        ("small", TransitStubConfig::small(), 4),
        (
            "sparse",
            TransitStubConfig {
                transit_nodes: 2,
                stubs_per_transit: 1,
                nodes_per_stub: 3,
                ..TransitStubConfig::paper()
            },
            2,
        ),
    ];
    for (name, ts_config, neighbors) in topologies {
        for seed in [0xc0ffee_u64, 1, 42] {
            let ts = generate(&ts_config);
            let overlay_config = OverlayConfig {
                neighbors_per_node: neighbors,
                seed,
            };
            let overlay = Overlay::random_neighbors(&ts.topology, &overlay_config);

            let run = |threads: usize| -> DistributedEngine {
                let program = programs::shortest_path("");
                let query_plan = plan(&program).unwrap();
                let mut config = EngineConfig::default();
                config.node.aggregate_selections = true;
                config.parallelism = threads;
                let mut engine =
                    DistributedEngine::new(overlay.graph.clone(), &[query_plan], config).unwrap();
                for l in overlay.links() {
                    engine
                        .insert_base(l.src, "link", link(l.src, l.dst, l.cost(Metric::Latency)))
                        .unwrap();
                }
                engine.run_to_quiescence().unwrap();
                // One update burst: deletions + reinsertions stress the
                // DRed re-derivation and FIFO-replay paths.
                let mut workload = UpdateWorkload::paper(&overlay.links(), Metric::Latency, seed);
                for update in workload.burst() {
                    engine.apply_link_update("link", &update).unwrap();
                }
                let report = engine.run_to_quiescence().unwrap();
                assert!(report.quiesced, "{name}/seed {seed}/threads {threads}");
                // Then a pure deletion burst — links vanish for good, so
                // the over-delete closures (and the remote retractions
                // they ship) must themselves be bit-for-bit deterministic
                // across executor thread counts.
                for update in workload.burst() {
                    let cost = update.old_cost;
                    engine
                        .delete_base(update.a, "link", link(update.a, update.b, cost))
                        .unwrap();
                    engine
                        .delete_base(update.b, "link", link(update.b, update.a, cost))
                        .unwrap();
                }
                let report = engine.run_to_quiescence().unwrap();
                assert!(report.quiesced, "{name}/seed {seed}/threads {threads}");
                engine
            };

            let sequential = run(1);
            for threads in [2, 4] {
                let parallel = run(threads);
                check_bitwise_identical(&sequential, &parallel).unwrap_or_else(|e| {
                    panic!("topology {name}, seed {seed:#x}, {threads} threads: {e}")
                });
            }
        }
    }
}

#[test]
fn concurrent_queries_do_not_interfere() {
    // Three metric queries run concurrently in one engine; each must
    // produce exactly the same results as running it alone.
    let overlay = small_overlay();
    let metrics = [Metric::Latency, Metric::Reliability, Metric::Random];
    let suffix = |m: Metric| match m {
        Metric::Latency => "latency",
        Metric::Reliability => "reliability",
        Metric::Random => "random",
        Metric::HopCount => "hops",
    };
    let plans: Vec<_> = metrics
        .iter()
        .map(|&m| plan(&programs::shortest_path(suffix(m))).unwrap())
        .collect();
    let mut config = EngineConfig::default();
    config.node.aggregate_selections = true;
    let mut combined =
        DistributedEngine::new(overlay.graph.clone(), &plans, config.clone()).unwrap();
    for &m in &metrics {
        for l in overlay.links() {
            combined
                .insert_base(
                    l.src,
                    &format!("link_{}", suffix(m)),
                    link(l.src, l.dst, l.cost(m)),
                )
                .unwrap();
        }
    }
    combined.run_to_quiescence().unwrap();

    for &m in &metrics {
        let single_plan = plan(&programs::shortest_path(suffix(m))).unwrap();
        let mut single =
            DistributedEngine::new(overlay.graph.clone(), &[single_plan], config.clone()).unwrap();
        for l in overlay.links() {
            single
                .insert_base(
                    l.src,
                    &format!("link_{}", suffix(m)),
                    link(l.src, l.dst, l.cost(m)),
                )
                .unwrap();
        }
        single.run_to_quiescence().unwrap();
        let rel = format!("shortestPath_{}", suffix(m));
        // Compare (source, destination, cost): equal-cost ties may be won by
        // different path vectors depending on event interleaving.
        let project = |engine: &DistributedEngine| {
            let mut v: Vec<_> = engine
                .results(&rel)
                .into_iter()
                .map(|(_, t)| {
                    (
                        t.get(0).unwrap().clone(),
                        t.get(1).unwrap().clone(),
                        t.get(3).unwrap().clone(),
                    )
                })
                .collect();
            v.sort();
            v
        };
        assert_eq!(
            project(&combined),
            project(&single),
            "metric {m} differs between combined and single runs"
        );
    }
}
