//! Differential tests for the optimizer pipeline (Section 5.1).
//!
//! The optimizer must never change what a query *means*, only what it
//! costs:
//!
//! * **Magic-sets restriction** — on random graphs, the magic-rewritten
//!   program seeded with one queried destination holds exactly the store
//!   the unrewritten program holds when restricted to that destination,
//!   *including per-tuple derivation counts*, under all three evaluation
//!   strategies (SN / BSN / PSN).
//! * **Pass levels compose** — `off` is the identity, and the pipeline's
//!   `all` output equals applying the passes via the canonical builders.
//! * **Parallel determinism** — the fully optimized (reordered + doubly
//!   magic) source-routing program runs bit-for-bit identically across
//!   1 / 2 / 4 executor threads on the distributed engine.

use ndlog_core::consistency::check_bitwise_identical;
use ndlog_core::{plan, DistributedEngine, EngineConfig, NodeConfig};
use ndlog_lang::optimizer::{optimize, PassSet};
use ndlog_lang::{programs, Value};
use ndlog_net::gtitm::{generate, TransitStubConfig};
use ndlog_net::overlay::{Overlay, OverlayConfig};
use ndlog_net::NodeAddr;
use ndlog_runtime::{Evaluator, Strategy as EvalStrategy, Tuple};
use proptest::prelude::*;
use std::collections::BTreeSet;

fn link(a: u32, b: u32, c: f64) -> Tuple {
    Tuple::new(vec![Value::addr(a), Value::addr(b), Value::Float(c)])
}

/// A random directed edge list over `n` nodes (no self-loops).
fn edges_strategy(max_nodes: u32, max_edges: usize) -> impl Strategy<Value = Vec<(u32, u32, u8)>> {
    (2..=max_nodes).prop_flat_map(move |n| {
        prop::collection::vec(
            (0..n, 0..n, 1u8..10u8).prop_filter("no self-loops", |(a, b, _)| a != b),
            1..=max_edges,
        )
    })
}

/// `(relation, derivation count, tuple)` rows of the relations the
/// shortest-path programs derive, restricted to destination `dst`
/// (column 1 of `path` / `spCost` / `shortestPath`).
fn store_rows_for_dst(eval: &Evaluator, dst: u32) -> BTreeSet<(String, u64, Tuple)> {
    let mut rows = BTreeSet::new();
    for relation in ["path", "spCost", "shortestPath"] {
        if let Some(stored) = eval.store().relation(relation) {
            for entry in stored.iter() {
                if entry.tuple.get(1) == Some(&Value::addr(dst)) {
                    rows.insert((relation.to_string(), entry.count, entry.tuple.clone()));
                }
            }
        }
    }
    rows
}

fn run_program(
    program: &ndlog_lang::ast::Program,
    edges: &[(u32, u32, u8)],
    magic_dst: Option<u32>,
    strategy: EvalStrategy,
) -> Evaluator {
    let mut eval = Evaluator::new(program).expect("program plans");
    if let Some(d) = magic_dst {
        eval.insert_fact("magicDst", Tuple::new(vec![Value::addr(d)]));
    }
    for &(a, b, c) in edges {
        eval.insert_fact("link", link(a, b, f64::from(c)));
    }
    eval.run(strategy).expect("fixpoint");
    eval
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The magic-rewritten program, seeded with one destination, computes
    /// exactly the unrewritten program's store restricted to that
    /// destination — same tuples, same derivation counts — under every
    /// evaluation strategy.
    #[test]
    fn magic_restriction_is_exact_on_random_graphs(edges in edges_strategy(6, 12)) {
        let dst = edges[0].1;
        let full_program = programs::shortest_path("");
        let magic_program = programs::shortest_path_magic_dst("");
        for strategy in [
            EvalStrategy::SemiNaive,
            EvalStrategy::Buffered { batch: 2 },
            EvalStrategy::Pipelined,
        ] {
            let full = run_program(&full_program, &edges, None, strategy);
            let magic = run_program(&magic_program, &edges, Some(dst), strategy);
            prop_assert_eq!(
                store_rows_for_dst(&full, dst),
                store_rows_for_dst(&magic, dst),
                "strategy {:?}, dst {}", strategy, dst
            );
        }
    }
}

/// `PassSet::OFF` is the identity rewrite, and the full pipeline output
/// equals the canonical pre-optimized builders.
#[test]
fn pass_levels_compose() {
    let base = programs::shortest_path_source_routing_base("");
    let pipeline = programs::source_routing_pipeline("");

    let off = optimize(&base, &pipeline.clone().with_passes(PassSet::OFF)).unwrap();
    assert_eq!(off.program, base);
    assert_eq!(off.report.describe(), "identity");

    let all = optimize(&base, &pipeline).unwrap();
    assert_eq!(all.program, programs::shortest_path_source_routing(""));
    assert!(all.report.describe().contains("magic"));
    assert!(all.report.describe().contains("reorder"));
}

/// The fully optimized source-routing program (reordered + magicSrc +
/// magicDst) is deterministic across executor thread counts: stores,
/// statistics and the message trace are bit-for-bit identical.
#[test]
fn optimized_program_is_bitwise_identical_across_threads() {
    let ts = generate(&TransitStubConfig::small());
    let overlay = Overlay::random_neighbors(&ts.topology, &OverlayConfig::default());
    let n = overlay.node_count();
    let (src, dst) = (NodeAddr(0), NodeAddr((n - 1) as u32));

    let build = |threads: usize| -> DistributedEngine {
        let program = programs::shortest_path_source_routing("");
        let query_plan = plan(&program).expect("optimized program plans");
        let config = EngineConfig {
            node: NodeConfig {
                aggregate_selections: true,
                ..Default::default()
            },
            parallelism: threads,
            ..Default::default()
        };
        let mut engine =
            DistributedEngine::new(overlay.graph.clone(), &[query_plan], config).unwrap();
        for l in overlay.links() {
            engine
                .insert_base(
                    l.src,
                    "link",
                    link(
                        l.src.0,
                        l.dst.0,
                        l.cost(ndlog_net::topology::Metric::HopCount),
                    ),
                )
                .unwrap();
        }
        engine
            .insert_base(src, "magicSrc", Tuple::new(vec![Value::Addr(src)]))
            .unwrap();
        engine
            .insert_base(dst, "magicDst", Tuple::new(vec![Value::Addr(dst)]))
            .unwrap();
        engine
    };

    let mut sequential = build(1);
    let report = sequential.run_to_quiescence().unwrap();
    assert!(report.quiesced);
    assert!(
        sequential.result_count("shortestPath") > 0,
        "the seeded query found its path"
    );
    for threads in [2, 4] {
        let mut parallel = build(threads);
        let par_report = parallel.run_to_quiescence().unwrap();
        assert_eq!(par_report, report, "reports differ at {threads} threads");
        check_bitwise_identical(&sequential, &parallel)
            .unwrap_or_else(|e| panic!("{threads} threads: {e}"));
    }
}
