//! Delivery-coalescing equivalence properties.
//!
//! The epoch executor merges consecutive same-node deliveries into one
//! receive batch (one `process` call over every payload of the run)
//! instead of one `process` per message. Coalescing changes the *schedule*
//! — message traces and probe counts differ from the per-event engine —
//! but it must not change *results*. This test pins both halves of that
//! contract on seeded random topologies:
//!
//! * within each delivery mode, runs at 1, 2 and 4 executor threads are
//!   bit-for-bit identical (stores, statistics, message trace);
//! * across modes, the coalesced and per-event engines reach the same
//!   `shortestPath` fixpoint, which matches the underlay's Dijkstra
//!   distances everywhere and — on the sparse topology, where
//!   selection-free evaluation is tractable — a centralized evaluation
//!   over the same base facts under every strategy of Section 3: SN,
//!   BSN and PSN.

use ndlog_core::consistency::{check_against_centralized, check_bitwise_identical};
use ndlog_core::{plan, DistributedEngine, EngineConfig};
use ndlog_lang::{programs, Value};
use ndlog_net::gtitm::{generate, TransitStubConfig};
use ndlog_net::overlay::{Overlay, OverlayConfig};
use ndlog_net::topology::Metric;
use ndlog_runtime::{Evaluator, Strategy, Tuple};
use std::collections::BTreeSet;

fn link(a: ndlog_net::NodeAddr, b: ndlog_net::NodeAddr, c: f64) -> Tuple {
    Tuple::new(vec![Value::Addr(a), Value::Addr(b), Value::Float(c)])
}

/// All stored `shortestPath` tuples, node-independent. The Reliability
/// metric carries per-link random noise, so costs are tie-free and the
/// full-tuple set (path vectors included) is deterministic across
/// schedules.
fn result_set(engine: &DistributedEngine) -> BTreeSet<Tuple> {
    engine
        .results("shortestPath")
        .into_iter()
        .map(|(_, t)| t)
        .collect()
}

#[test]
fn coalesced_delivery_is_equivalent_to_per_event_delivery() {
    // (name, transit-stub shape, overlay neighbors, centralized
    // comparison feasible), regenerated per seed. The centralized
    // evaluator runs without aggregate selections and therefore
    // materializes every cycle-free path — tractable only on the sparse
    // overlay; the denser one is checked against Dijkstra distances
    // instead.
    let topologies: [(&str, TransitStubConfig, usize, bool); 2] = [
        ("small", TransitStubConfig::small(), 4, false),
        (
            "sparse",
            TransitStubConfig {
                transit_nodes: 2,
                stubs_per_transit: 1,
                nodes_per_stub: 3,
                ..TransitStubConfig::paper()
            },
            2,
            true,
        ),
    ];
    for (name, ts_config, neighbors, centralized_ok) in topologies {
        for seed in [7_u64, 0xbeef] {
            let ts = generate(&ts_config);
            let overlay_config = OverlayConfig {
                neighbors_per_node: neighbors,
                seed,
            };
            let overlay = Overlay::random_neighbors(&ts.topology, &overlay_config);

            let mut base = Vec::new();
            for l in overlay.links() {
                base.push((
                    "link".to_string(),
                    link(l.src, l.dst, l.cost(Metric::Reliability)),
                ));
            }

            let run = |coalesce: bool, threads: usize| -> DistributedEngine {
                let program = programs::shortest_path("");
                let query_plan = plan(&program).unwrap();
                let mut config = EngineConfig::default();
                config.node.aggregate_selections = true;
                config.parallelism = threads;
                config.coalesce_deliveries = coalesce;
                let mut engine =
                    DistributedEngine::new(overlay.graph.clone(), &[query_plan], config).unwrap();
                for l in overlay.links() {
                    engine
                        .insert_base(
                            l.src,
                            "link",
                            link(l.src, l.dst, l.cost(Metric::Reliability)),
                        )
                        .unwrap();
                }
                let report = engine.run_to_quiescence().unwrap();
                assert!(report.quiesced, "{name}/seed {seed}/threads {threads}");
                engine
            };

            let mut fixpoints = Vec::new();
            for coalesce in [true, false] {
                let mode = if coalesce { "coalesced" } else { "per-event" };
                let baseline = run(coalesce, 1);

                // Per-event delivery means one receive batch per message;
                // coalescing can only widen batches.
                let delivery = baseline.delivery_stats();
                assert!(delivery.deliveries > 0, "{name}/seed {seed}: no messages");
                if coalesce {
                    assert!(delivery.mean_batch_width() >= 1.0);
                } else {
                    assert_eq!(delivery.deliveries, delivery.receive_batches);
                }

                // Within a mode, thread count must not change anything.
                for threads in [2, 4] {
                    let parallel = run(coalesce, threads);
                    check_bitwise_identical(&baseline, &parallel).unwrap_or_else(|e| {
                        panic!("{mode}, topology {name}, seed {seed:#x}, {threads} threads: {e}")
                    });
                }

                // Each mode's fixpoint must match the centralized one
                // (where tractable) and the underlay's Dijkstra costs.
                if centralized_ok {
                    check_against_centralized(
                        &baseline,
                        &programs::shortest_path(""),
                        &base,
                        "shortestPath",
                    )
                    .unwrap_or_else(|e| panic!("{mode}, topology {name}, seed {seed:#x}: {e}"));
                }
                for src in overlay.graph.nodes() {
                    let oracle = overlay.graph.shortest_distances(src, Metric::Reliability);
                    for (node, tuple) in baseline.results("shortestPath") {
                        if node != src {
                            continue;
                        }
                        let dst = tuple.get(1).unwrap().as_addr().unwrap();
                        let cost = tuple.get(3).unwrap().as_f64().unwrap();
                        assert!(
                            (cost - oracle[dst.index()]).abs() < 1e-6,
                            "{mode}, topology {name}, seed {seed:#x}: cost mismatch {src}->{dst}"
                        );
                    }
                }
                fixpoints.push(result_set(&baseline));
            }

            // Across modes: different schedules, same fixpoint.
            assert_eq!(
                fixpoints[0], fixpoints[1],
                "topology {name}, seed {seed:#x}: coalesced and per-event fixpoints differ"
            );

            // And the centralized fixpoint itself is strategy-independent:
            // SN, BSN and PSN all agree with what the distributed engines
            // converged to (tie-free costs make the comparison exact).
            if !centralized_ok {
                continue;
            }
            let program = programs::shortest_path("");
            for strategy in [
                Strategy::SemiNaive,
                Strategy::Buffered { batch: 16 },
                Strategy::Pipelined,
            ] {
                let mut evaluator = Evaluator::new(&program).unwrap();
                for (rel, tuple) in &base {
                    evaluator.insert_fact(rel, tuple.clone());
                }
                evaluator.run(strategy).unwrap();
                let central: BTreeSet<Tuple> =
                    evaluator.results("shortestPath").into_iter().collect();
                assert_eq!(
                    central, fixpoints[0],
                    "topology {name}, seed {seed:#x}: {strategy:?} centralized fixpoint \
                     differs from the distributed one"
                );
            }
        }
    }
}
