//! Delta-tap exactness under randomized churn: the live subscription
//! stream, replayed from empty, must reconstruct every subscribed
//! relation after every burst — for any initial strategy, including
//! deletion-heavy bursts that drive full DRed passes.
//!
//! This is the subscription-level counterpart of `tests/churn.rs`: the
//! same seeded workload and burst model, but instead of comparing the
//! store against a from-scratch oracle, it checks the *stream* the store
//! emitted on the way there. Two invariants:
//!
//! 1. **Alternation** — per tuple, the stream strictly alternates
//!    insert/retract (no insert of a visible tuple, no retract of an
//!    invisible one). This is what makes the stream replayable by a
//!    stateless consumer.
//! 2. **Reconstruction** — folding the stream into a set from empty
//!    yields exactly the relation's current contents at every burst
//!    boundary (and after full teardown, exactly nothing).

use ndlog::lang::{programs, Value};
use ndlog::runtime::{DeltaTap, Evaluator, Sign, Strategy, Tuple, TupleDelta};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::{BTreeMap, BTreeSet};

const NODES: u32 = 5;
const BURSTS: usize = 4;
const WATCHED: [&str; 3] = ["path", "spCost", "shortestPath"];

fn link(a: u32, b: u32, c: f64) -> Tuple {
    Tuple::new(vec![Value::addr(a), Value::addr(b), Value::Float(c)])
}

fn canonical(a: u32, b: u32) -> (u32, u32) {
    if a <= b {
        (a, b)
    } else {
        (b, a)
    }
}

fn load(eval: &mut Evaluator, base: &BTreeMap<(u32, u32), f64>) {
    for (&(a, b), &c) in base {
        eval.insert_fact("link", link(a, b, c));
        eval.insert_fact("link", link(b, a, c));
    }
}

/// One burst of random churn (the `tests/churn.rs` model): ~30% of links
/// deleted or re-costed plus a couple of fresh ones.
fn burst(rng: &mut StdRng, base: &mut BTreeMap<(u32, u32), f64>) -> Vec<(bool, u32, u32, f64)> {
    let mut ops = Vec::new();
    let existing: Vec<((u32, u32), f64)> = base.iter().map(|(&k, &c)| (k, c)).collect();
    for ((a, b), old_cost) in existing {
        if !rng.random_bool(0.3) {
            continue;
        }
        ops.push((false, a, b, old_cost));
        base.remove(&(a, b));
        if rng.random_bool(0.5) {
            let new_cost = f64::from(rng.random_range(1u32..10)) / 2.0;
            ops.push((true, a, b, new_cost));
            base.insert((a, b), new_cost);
        }
    }
    for _ in 0..2 {
        let a = rng.random_range(0u32..NODES);
        let b = rng.random_range(0u32..NODES);
        if a == b {
            continue;
        }
        let key = canonical(a, b);
        if base.contains_key(&key) {
            continue;
        }
        let cost = f64::from(rng.random_range(1u32..10)) / 2.0;
        ops.push((true, key.0, key.1, cost));
        base.insert(key, cost);
    }
    ops
}

/// Fold a drained stream into the subscriber's visible-set replica,
/// enforcing strict per-tuple alternation.
fn replay_into(replica: &mut BTreeSet<(String, Tuple)>, events: Vec<TupleDelta>, context: &str) {
    for event in events {
        let key = (event.relation.clone(), event.tuple.clone());
        match event.sign {
            Sign::Insert => assert!(
                replica.insert(key),
                "{context}: insert of already-visible {event}"
            ),
            Sign::Delete => assert!(
                replica.remove(&key),
                "{context}: retract of invisible {event}"
            ),
        }
    }
}

/// The engine's current contents of one watched relation, keyed like the
/// replica.
fn visible(eval: &Evaluator, relation: &str) -> BTreeSet<(String, Tuple)> {
    eval.results(relation)
        .into_iter()
        .map(|t| (relation.to_string(), t))
        .collect()
}

fn subscribe_all(tap: &mut DeltaTap) {
    for relation in WATCHED {
        tap.subscribe(relation);
    }
}

#[test]
fn subscription_stream_reconstructs_relations_under_churn() {
    let strategies = [
        Strategy::SemiNaive,
        Strategy::Buffered { batch: 1 },
        Strategy::Buffered { batch: 2 },
        Strategy::Pipelined,
    ];
    for seed in [7u64, 42, 0xc0ffee, 2026] {
        for strategy in strategies {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut base: BTreeMap<(u32, u32), f64> = BTreeMap::new();
            for a in 0..NODES {
                for b in (a + 1)..NODES {
                    if rng.random_bool(0.6) {
                        base.insert((a, b), f64::from(rng.random_range(1u32..10)) / 2.0);
                    }
                }
            }
            let program = programs::shortest_path("");
            let mut eval = Evaluator::new(&program).unwrap();
            // Subscribe BEFORE any evaluation: the stream must cover the
            // initial fixpoint too, so the replica starts truly empty.
            subscribe_all(eval.tap_mut());
            load(&mut eval, &base);
            eval.run(strategy).unwrap();

            let mut replica = BTreeSet::new();
            let context = format!("seed {seed}, {strategy:?}, initial fixpoint");
            replay_into(&mut replica, eval.drain_tap(), &context);
            for relation in WATCHED {
                let expected: BTreeSet<_> = visible(&eval, relation);
                let got: BTreeSet<_> = replica
                    .iter()
                    .filter(|(rel, _)| rel == relation)
                    .cloned()
                    .collect();
                assert_eq!(got, expected, "{context}: {relation} replica diverged");
            }

            for round in 0..BURSTS {
                // Alternate delivery shape: odd rounds arrive as one delta
                // batch, even rounds tuple-at-a-time — the tap must be
                // exact on both paths.
                let ops = burst(&mut rng, &mut base);
                if round % 2 == 1 {
                    let mut deltas = Vec::new();
                    for (insert, a, b, c) in ops {
                        for (s, d) in [(a, b), (b, a)] {
                            deltas.push(if insert {
                                TupleDelta::insert("link", link(s, d, c))
                            } else {
                                TupleDelta::delete("link", link(s, d, c))
                            });
                        }
                    }
                    eval.update_batch(deltas).unwrap();
                } else {
                    for (insert, a, b, c) in ops {
                        for (s, d) in [(a, b), (b, a)] {
                            let delta = if insert {
                                TupleDelta::insert("link", link(s, d, c))
                            } else {
                                TupleDelta::delete("link", link(s, d, c))
                            };
                            eval.update(delta).unwrap();
                        }
                    }
                }

                let context = format!("seed {seed}, {strategy:?}, burst {round}");
                replay_into(&mut replica, eval.drain_tap(), &context);
                for relation in WATCHED {
                    let expected: BTreeSet<_> = visible(&eval, relation);
                    let got: BTreeSet<_> = replica
                        .iter()
                        .filter(|(rel, _)| rel == relation)
                        .cloned()
                        .collect();
                    assert_eq!(got, expected, "{context}: {relation} replica diverged");
                }
            }
        }
    }
}

#[test]
fn subscription_stream_drains_on_full_teardown() {
    for strategy in [
        Strategy::SemiNaive,
        Strategy::Buffered { batch: 1 },
        Strategy::Pipelined,
    ] {
        let mut rng = StdRng::seed_from_u64(99);
        let mut base: BTreeMap<(u32, u32), f64> = BTreeMap::new();
        for a in 0..NODES {
            for b in (a + 1)..NODES {
                if rng.random_bool(0.7) {
                    base.insert((a, b), f64::from(rng.random_range(1u32..6)));
                }
            }
        }
        let program = programs::shortest_path("");
        let mut eval = Evaluator::new(&program).unwrap();
        subscribe_all(eval.tap_mut());
        load(&mut eval, &base);
        eval.run(strategy).unwrap();

        let mut replica = BTreeSet::new();
        replay_into(&mut replica, eval.drain_tap(), "teardown fixpoint");
        assert!(
            !replica.is_empty(),
            "fixpoint derived something to tear down"
        );

        for (&(a, b), &c) in &base {
            for (s, d) in [(a, b), (b, a)] {
                eval.update(TupleDelta::delete("link", link(s, d, c)))
                    .unwrap();
            }
        }
        replay_into(&mut replica, eval.drain_tap(), "teardown churn");
        assert!(
            replica.is_empty(),
            "{strategy:?}: stream left a non-empty replica after full teardown: {replica:?}"
        );
    }
}
