//! Workspace-level tests for the indexed storage layer and compiled probe
//! plans:
//!
//! * joins with bound columns run as index probes end to end — the
//!   distributed engine's computation counters show tuples-examined
//!   proportional to matches, not relation sizes;
//! * DRed re-derivation restoring survivors after P2's lossy primary-key
//!   replacements (a regression test for a fixpoint divergence between the
//!   original and localized shortest-path programs);
//! * deletion cascades are exact for every initial evaluation strategy
//!   (the over-delete/re-derive pass, regression-tested against the
//!   formerly documented SN/BSN-initial stale-retraction edge);
//! * evaluator fixpoints are identical with and without the index layer
//!   (the index is an access path, never a semantics change).

use ndlog_core::{plan, DistributedEngine, EngineConfig};
use ndlog_lang::localize::localize;
use ndlog_lang::{parse_program, programs, Value};
use ndlog_net::topology::{LinkMetrics, Topology};
use ndlog_net::NodeAddr;
use ndlog_runtime::{Evaluator, Strategy, Tuple, TupleDelta};
use std::collections::BTreeSet;

fn addr(i: u32) -> Value {
    Value::addr(i)
}

fn link(a: u32, b: u32, c: f64) -> Tuple {
    Tuple::new(vec![addr(a), addr(b), Value::Float(c)])
}

/// A line topology 0 - 1 - ... - (n-1) with uniform links.
fn line(n: usize) -> Topology {
    let mut t = Topology::with_nodes(n);
    for i in 0..n - 1 {
        t.add_link(
            NodeAddr(i as u32),
            NodeAddr(i as u32 + 1),
            LinkMetrics {
                latency_ms: 2.0,
                reliability: 1.0,
                random: 1.0,
                bandwidth_bps: 10_000_000.0,
            },
        )
        .unwrap();
    }
    t
}

#[test]
fn distributed_joins_probe_instead_of_scanning() {
    let n = 8;
    let graph = line(n);
    let plan = plan(&programs::shortest_path("")).unwrap();
    let mut engine = DistributedEngine::new(graph, &[plan], EngineConfig::default()).unwrap();
    for i in 0..n as u32 - 1 {
        engine
            .insert_base(NodeAddr(i), "link", link(i, i + 1, 1.0))
            .unwrap();
        engine
            .insert_base(NodeAddr(i + 1), "link", link(i + 1, i, 1.0))
            .unwrap();
    }
    engine.run_to_quiescence().unwrap();
    assert_eq!(engine.result_count("shortestPath"), n * (n - 1));

    let stats = engine.computation_stats();
    assert!(
        stats.logical_probes > 0,
        "joins must go through index probes"
    );
    assert!(
        stats.logical_probes > stats.scans * 10,
        "probes {} should dominate scans {}",
        stats.logical_probes,
        stats.scans
    );
    assert!(
        stats.distinct_probes <= stats.logical_probes,
        "grouped batches can only shrink executed probes"
    );
    // Every examined tuple was reached through a probe bucket or a rare
    // residual scan; the total must stay far below the quadratic
    // every-delta-scans-every-path regime.
    assert!(
        stats.tuples_examined < stats.tuples_processed * n * n,
        "examined {} vs processed {}",
        stats.tuples_examined,
        stats.tuples_processed
    );
}

#[test]
fn rederivation_restores_tied_shortest_paths() {
    // Regression: with links 0-2:9, 1-3:7, 2-4 (7 then 2 then 4), 3-4
    // (3 then 2), 0-3:5, the path 0-3-4-2 transiently ties the direct
    // 0-2 link at cost 9. The tie's survivor under primary-key replacement
    // is then deleted by a link-cost update, which used to lose the
    // shortestPath(0,2) result entirely in the non-localized program.
    let edges: Vec<(u32, u32, u8)> = vec![
        (1, 3, 7),
        (0, 2, 9),
        (2, 4, 7),
        (2, 4, 2),
        (3, 4, 3),
        (4, 3, 2),
        (4, 2, 4),
        (3, 0, 5),
    ];
    let program = programs::shortest_path("");
    let localized = localize(&program).unwrap();
    let run = |p: &ndlog_lang::Program| -> BTreeSet<(Value, Value, Value)> {
        let mut eval = Evaluator::new(p).unwrap();
        for &(a, b, c) in &edges {
            eval.insert_fact("link", link(a, b, f64::from(c)));
            eval.insert_fact("link", link(b, a, f64::from(c)));
        }
        eval.run(Strategy::Pipelined).unwrap();
        eval.results("shortestPath")
            .into_iter()
            .map(|t| {
                (
                    t.get(0).unwrap().clone(),
                    t.get(1).unwrap().clone(),
                    t.get(3).unwrap().clone(),
                )
            })
            .collect()
    };
    let original = run(&program);
    let localized_results = run(&localized);
    assert!(
        original.contains(&(addr(0), addr(2), Value::Float(9.0))),
        "the direct 0-2 path must be rederived after its tied rival dies"
    );
    assert_eq!(original, localized_results);
}

#[test]
fn index_layer_is_a_pure_access_path() {
    // Incremental deletions through the probe plans must still converge to
    // the same fixpoint as evaluating the final base data from scratch
    // (the seed's Theorem 3 check, now with index accounting), and the
    // incremental run must actually use the indexes.
    let program = programs::shortest_path("");
    let edges = [(0u32, 1u32, 5.0), (0, 2, 1.0), (2, 1, 1.0), (1, 3, 1.0)];

    let mut incremental = Evaluator::new(&program).unwrap();
    for (a, b, c) in edges {
        incremental.insert_fact("link", link(a, b, c));
        incremental.insert_fact("link", link(b, a, c));
    }
    incremental.run(Strategy::Pipelined).unwrap();
    let del1 = incremental
        .update(TupleDelta::delete("link", link(0, 2, 1.0)))
        .unwrap();
    let del2 = incremental
        .update(TupleDelta::delete("link", link(2, 0, 1.0)))
        .unwrap();
    assert!(
        del1.logical_probes + del2.logical_probes > 0,
        "deletion cascades must join through index probes"
    );

    let mut scratch = Evaluator::new(&program).unwrap();
    for (a, b, c) in [(0u32, 1u32, 5.0), (2, 1, 1.0), (1, 3, 1.0)] {
        scratch.insert_fact("link", link(a, b, c));
        scratch.insert_fact("link", link(b, a, c));
    }
    scratch.run(Strategy::Pipelined).unwrap();

    let a: BTreeSet<Tuple> = incremental.results("shortestPath").into_iter().collect();
    let b: BTreeSet<Tuple> = scratch.results("shortestPath").into_iter().collect();
    assert_eq!(a, b);
    assert_eq!(a.len(), 12);
}

#[test]
fn deletion_cascades_are_exact_for_any_initial_strategy() {
    // Regression for the formerly documented mixed-strategy edge: an
    // SN/BSN initial run over-counts derivations (no Theorem-2 guarantee),
    // so a count-trusting PSN deletion cascade used to leave `path` tuples
    // behind, the `spCost` aggregate then advanced past the pending
    // retraction, and a stale `shortestPath` survived — e.g. deleting the
    // 0-2 links after a BSN(1) run stranded shortestPath(1,0,[1,2,0],2.0).
    // The DRed over-delete/re-derive pass removes the closure outright and
    // restores survivors, so incremental must equal from-scratch for every
    // initial strategy.
    let program = programs::shortest_path("");
    let edges = [(0u32, 1u32, 5.0), (0, 2, 1.0), (2, 1, 1.0), (1, 3, 1.0)];

    let mut scratch = Evaluator::new(&program).unwrap();
    for (a, b, c) in [(0u32, 1u32, 5.0), (2, 1, 1.0), (1, 3, 1.0)] {
        scratch.insert_fact("link", link(a, b, c));
        scratch.insert_fact("link", link(b, a, c));
    }
    scratch.run(Strategy::Pipelined).unwrap();
    let oracle: BTreeSet<Tuple> = scratch.results("shortestPath").into_iter().collect();

    for strategy in [
        Strategy::SemiNaive,
        Strategy::Buffered { batch: 1 },
        Strategy::Buffered { batch: 3 },
        Strategy::Pipelined,
    ] {
        let mut incremental = Evaluator::new(&program).unwrap();
        for (a, b, c) in edges {
            incremental.insert_fact("link", link(a, b, c));
            incremental.insert_fact("link", link(b, a, c));
        }
        incremental.run(strategy).unwrap();
        incremental
            .update(TupleDelta::delete("link", link(0, 2, 1.0)))
            .unwrap();
        incremental
            .update(TupleDelta::delete("link", link(2, 0, 1.0)))
            .unwrap();
        let got: BTreeSet<Tuple> = incremental.results("shortestPath").into_iter().collect();
        assert_eq!(
            got, oracle,
            "{strategy:?} initial run + PSN deletions diverged from scratch"
        );
        // The intermediate layers must be exact too, not just the query
        // result: stale `path` tuples are where the old bug started.
        let got_paths: BTreeSet<Tuple> = incremental.results("path").into_iter().collect();
        let oracle_paths: BTreeSet<Tuple> = scratch.results("path").into_iter().collect();
        assert_eq!(got_paths, oracle_paths, "{strategy:?} left stale paths");
        let got_costs: BTreeSet<Tuple> = incremental.results("spCost").into_iter().collect();
        let oracle_costs: BTreeSet<Tuple> = scratch.results("spCost").into_iter().collect();
        assert_eq!(got_costs, oracle_costs, "{strategy:?} left stale spCost");
    }
}

#[test]
fn unbound_join_still_works_via_scan_fallback() {
    // A genuine cross product has no bound columns, hence no probe plan:
    // the scan fallback must still produce the right answers and be
    // visible in the stats.
    let program = parse_program(
        r#"
        c1 pairs(@A, @B) :- left(@A), right(@B).
        "#,
    )
    .unwrap();
    let mut eval = Evaluator::new(&program).unwrap();
    for i in 0..4u32 {
        eval.insert_fact("left", Tuple::new(vec![addr(i)]));
        eval.insert_fact("right", Tuple::new(vec![addr(i + 100)]));
    }
    let stats = eval.run(Strategy::Pipelined).unwrap();
    assert_eq!(eval.results("pairs").len(), 16);
    assert!(stats.scans > 0, "cross products scan by design");
    assert_eq!(stats.logical_probes, 0);
    assert_eq!(stats.distinct_probes, 0);
}
