//! Randomized delete/insert churn versus a from-scratch oracle.
//!
//! Section 4's update model (and Section 6.5's bursty experiments) applies
//! periodic bursts of base-tuple changes to a quiesced store. With DRed
//! deletion maintenance this must be exact for *any* initial evaluation
//! strategy: an SN or BSN initial run may over-count derivations (no
//! Theorem-2 guarantee) and primary-key replacements fold counts away, but
//! the over-delete/re-derive pass never consults a count, so incremental
//! results must equal a from-scratch evaluation after every burst.
//!
//! The workload mirrors `ndlog_core::UpdateWorkload` at the evaluator
//! level: each burst touches a random subset of the (bidirectional) links —
//! deleting some outright, re-costing others as delete-then-insert, and
//! adding fresh ones — seeded through the deterministic `rand` stand-in,
//! with no wall-clock dependence.

use ndlog_lang::{programs, Value};
use ndlog_runtime::{Evaluator, Strategy, Tuple, TupleDelta};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::{BTreeMap, BTreeSet};

const NODES: u32 = 5;
const BURSTS: usize = 4;

fn link(a: u32, b: u32, c: f64) -> Tuple {
    Tuple::new(vec![Value::addr(a), Value::addr(b), Value::Float(c)])
}

/// Canonical undirected edge key.
fn canonical(a: u32, b: u32) -> (u32, u32) {
    if a <= b {
        (a, b)
    } else {
        (b, a)
    }
}

/// Insert both directions of every link as base facts.
fn load(eval: &mut Evaluator, base: &BTreeMap<(u32, u32), f64>) {
    for (&(a, b), &c) in base {
        eval.insert_fact("link", link(a, b, c));
        eval.insert_fact("link", link(b, a, c));
    }
}

/// Apply one bidirectional base change incrementally (updates are PSN).
fn apply(eval: &mut Evaluator, sign_insert: bool, a: u32, b: u32, c: f64) {
    for (s, d) in [(a, b), (b, a)] {
        let delta = if sign_insert {
            TupleDelta::insert("link", link(s, d, c))
        } else {
            TupleDelta::delete("link", link(s, d, c))
        };
        eval.update(delta).unwrap();
    }
}

/// One burst of random churn over the undirected link set: ~30% of the
/// existing links are deleted or re-costed, and a few fresh links appear.
/// Returns the incremental operations applied to `base` (which is mutated
/// to the post-burst state).
fn burst(rng: &mut StdRng, base: &mut BTreeMap<(u32, u32), f64>) -> Vec<(bool, u32, u32, f64)> {
    let mut ops = Vec::new();
    let existing: Vec<((u32, u32), f64)> = base.iter().map(|(&k, &c)| (k, c)).collect();
    for ((a, b), old_cost) in existing {
        if !rng.random_bool(0.3) {
            continue;
        }
        ops.push((false, a, b, old_cost));
        base.remove(&(a, b));
        if rng.random_bool(0.5) {
            // Re-cost: delete-then-insert, Section 4's update definition.
            let new_cost = f64::from(rng.random_range(1u32..10)) / 2.0;
            ops.push((true, a, b, new_cost));
            base.insert((a, b), new_cost);
        }
    }
    // A couple of fresh links keep the graph from draining.
    for _ in 0..2 {
        let a = rng.random_range(0u32..NODES);
        let b = rng.random_range(0u32..NODES);
        if a == b {
            continue;
        }
        let key = canonical(a, b);
        if base.contains_key(&key) {
            continue;
        }
        let cost = f64::from(rng.random_range(1u32..10)) / 2.0;
        ops.push((true, key.0, key.1, cost));
        base.insert(key, cost);
    }
    ops
}

/// Sorted tuple set of a relation.
fn snapshot(eval: &Evaluator, relation: &str) -> BTreeSet<Tuple> {
    eval.results(relation).into_iter().collect()
}

/// `shortestPath` projected to (source, destination, cost). Equal-cost
/// ties may be won by different representative path vectors depending on
/// update interleaving — a legitimate nondeterminism under (S, D)-keyed
/// replacement that the distributed tests tolerate the same way — so the
/// oracle comparison pins costs, not vectors.
fn cost_snapshot(eval: &Evaluator) -> BTreeSet<(Value, Value, Value)> {
    eval.results("shortestPath")
        .into_iter()
        .map(|t| {
            (
                t.get(0).unwrap().clone(),
                t.get(1).unwrap().clone(),
                t.get(3).unwrap().clone(),
            )
        })
        .collect()
}

#[test]
fn churn_matches_from_scratch_for_every_strategy() {
    let strategies = [
        Strategy::SemiNaive,
        Strategy::Buffered { batch: 1 },
        Strategy::Buffered { batch: 2 },
        Strategy::Pipelined,
    ];
    for seed in [7u64, 42, 0xc0ffee, 2026] {
        for strategy in strategies {
            let mut rng = StdRng::seed_from_u64(seed);
            // A random initial graph: every undirected pair is a link with
            // probability 0.6.
            let mut base: BTreeMap<(u32, u32), f64> = BTreeMap::new();
            for a in 0..NODES {
                for b in (a + 1)..NODES {
                    if rng.random_bool(0.6) {
                        let cost = f64::from(rng.random_range(1u32..10)) / 2.0;
                        base.insert((a, b), cost);
                    }
                }
            }
            let program = programs::shortest_path("");
            let mut incremental = Evaluator::new(&program).unwrap();
            load(&mut incremental, &base);
            incremental.run(strategy).unwrap();

            for round in 0..BURSTS {
                for (insert, a, b, c) in burst(&mut rng, &mut base) {
                    apply(&mut incremental, insert, a, b, c);
                }
                let mut scratch = Evaluator::new(&program).unwrap();
                load(&mut scratch, &base);
                scratch.run(Strategy::Pipelined).unwrap();
                // Every layer must match, not just the query result: the
                // historical bugs started as stale `path` tuples and
                // unretracted `spCost` aggregates. `path` and `spCost` are
                // tie-free (all cycle-free paths / one aggregate per
                // group), so they compare exactly.
                for relation in ["path", "spCost"] {
                    assert_eq!(
                        snapshot(&incremental, relation),
                        snapshot(&scratch, relation),
                        "seed {seed}, {strategy:?}, burst {round}: \
                         incremental {relation} diverged from from-scratch"
                    );
                }
                assert_eq!(
                    cost_snapshot(&incremental),
                    cost_snapshot(&scratch),
                    "seed {seed}, {strategy:?}, burst {round}: \
                     incremental shortestPath costs diverged from from-scratch"
                );
            }
        }
    }
}

#[test]
fn full_teardown_leaves_nothing_behind() {
    // Deleting every base link one by one must drain every derived layer,
    // whatever the initial strategy — the harshest count-exactness test.
    for strategy in [
        Strategy::SemiNaive,
        Strategy::Buffered { batch: 1 },
        Strategy::Pipelined,
    ] {
        let mut base: BTreeMap<(u32, u32), f64> = BTreeMap::new();
        let mut rng = StdRng::seed_from_u64(99);
        for a in 0..NODES {
            for b in (a + 1)..NODES {
                if rng.random_bool(0.7) {
                    base.insert((a, b), f64::from(rng.random_range(1u32..6)));
                }
            }
        }
        let program = programs::shortest_path("");
        let mut eval = Evaluator::new(&program).unwrap();
        load(&mut eval, &base);
        eval.run(strategy).unwrap();
        for (&(a, b), &c) in &base {
            apply(&mut eval, false, a, b, c);
        }
        for relation in ["path", "spCost", "shortestPath"] {
            assert!(
                eval.results(relation).is_empty(),
                "{strategy:?}: {relation} retained tuples after full teardown"
            );
        }
    }
}

#[test]
fn batched_bursts_match_from_scratch() {
    // The same churn model, but each burst enters the engine as *one*
    // delta batch (`Evaluator::update_batch`) instead of one update per
    // delta — the shape one simulator epoch delivers to a node. All of a
    // burst's removals seed DRed passes interleaved with the batch's
    // insertions, and the result must still equal a from-scratch oracle
    // after every burst, for every initial strategy.
    for strategy in [
        Strategy::SemiNaive,
        Strategy::Buffered { batch: 2 },
        Strategy::Pipelined,
    ] {
        for seed in [11u64, 0xba7c4, 2027] {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut base: BTreeMap<(u32, u32), f64> = BTreeMap::new();
            for a in 0..NODES {
                for b in (a + 1)..NODES {
                    if rng.random_bool(0.6) {
                        base.insert((a, b), f64::from(rng.random_range(1u32..10)) / 2.0);
                    }
                }
            }
            let program = programs::shortest_path("");
            let mut incremental = Evaluator::new(&program).unwrap();
            load(&mut incremental, &base);
            incremental.run(strategy).unwrap();

            for round in 0..BURSTS {
                let mut deltas = Vec::new();
                for (insert, a, b, c) in burst(&mut rng, &mut base) {
                    for (s, d) in [(a, b), (b, a)] {
                        deltas.push(if insert {
                            TupleDelta::insert("link", link(s, d, c))
                        } else {
                            TupleDelta::delete("link", link(s, d, c))
                        });
                    }
                }
                incremental.update_batch(deltas).unwrap();

                let mut scratch = Evaluator::new(&program).unwrap();
                load(&mut scratch, &base);
                scratch.run(Strategy::Pipelined).unwrap();
                for relation in ["path", "spCost"] {
                    assert_eq!(
                        snapshot(&incremental, relation),
                        snapshot(&scratch, relation),
                        "seed {seed}, {strategy:?}, batched burst {round}: \
                         incremental {relation} diverged from from-scratch"
                    );
                }
                assert_eq!(
                    cost_snapshot(&incremental),
                    cost_snapshot(&scratch),
                    "seed {seed}, {strategy:?}, batched burst {round}: \
                     incremental shortestPath costs diverged from from-scratch"
                );
            }
        }
    }
}
