//! Reproduce the walk-through of Figure 2: the shortest-path query on the
//! 5-node example network, showing which `path` tuples exist after each
//! "iteration" (paths of increasing hop count), and how the shortest paths
//! are incrementally replaced when a cheaper path arrives.
//!
//! ```text
//! cargo run --example shortest_paths_figure2
//! ```

use ndlog_lang::{programs, Value};
use ndlog_runtime::{Evaluator, Strategy, Tuple};

const NAMES: [&str; 5] = ["a", "b", "c", "d", "e"];

fn name(v: &Value) -> &'static str {
    v.as_addr().map(|a| NAMES[a.index()]).unwrap_or("?")
}

fn path_vector(t: &Tuple) -> String {
    t.get(3)
        .and_then(Value::as_list)
        .map(|l| l.iter().map(name).collect::<Vec<_>>().join(","))
        .unwrap_or_default()
}

fn main() {
    // The network of Figure 2: l(a,b,5), l(a,c,1), l(c,b,1), l(b,d,1),
    // l(e,a,1); links are bidirectional.
    let program = programs::shortest_path("");
    let mut eval = Evaluator::new(&program).expect("plan");
    let edges = [
        (0u32, 1u32, 5.0),
        (0, 2, 1.0),
        (2, 1, 1.0),
        (1, 3, 1.0),
        (4, 0, 1.0),
    ];
    for (a, b, c) in edges {
        for (s, d) in [(a, b), (b, a)] {
            eval.insert_fact(
                "link",
                Tuple::new(vec![Value::addr(s), Value::addr(d), Value::Float(c)]),
            );
        }
    }
    eval.run(Strategy::SemiNaive).expect("fixpoint");

    // Group the derived path tuples by hop count — hop count k corresponds
    // to the k-th iteration of Figure 2.
    let mut paths = eval.results("path");
    paths.sort_by_key(|t| {
        (
            t.get(3)
                .and_then(Value::as_list)
                .map(|l| l.len())
                .unwrap_or(0),
            t.get(0).cloned(),
            t.get(1).cloned(),
        )
    });
    let max_hops = paths
        .iter()
        .map(|t| {
            t.get(3)
                .and_then(Value::as_list)
                .map(|l| l.len())
                .unwrap_or(0)
        })
        .max()
        .unwrap_or(0);
    for hops in 2..=max_hops {
        println!("--- iteration {} ({}-hop paths) ---", hops - 1, hops - 1);
        for t in paths
            .iter()
            .filter(|t| t.get(3).and_then(Value::as_list).map(|l| l.len()) == Some(hops))
        {
            println!(
                "  path({}, {}, nextHop={}, [{}], cost={})",
                name(t.get(0).unwrap()),
                name(t.get(1).unwrap()),
                name(t.get(2).unwrap()),
                path_vector(t),
                t.get(4).and_then(|v| v.as_f64()).unwrap()
            );
        }
    }

    // Section 2.2's incremental-replacement story: node a first sets its
    // shortest path to b to the direct link (cost 5), then replaces it with
    // the 2-hop path via c (cost 2).
    println!("\n--- final shortest paths from a ---");
    let mut shortest = eval.results("shortestPath");
    shortest.sort_by_key(|t| (t.get(0).cloned(), t.get(1).cloned()));
    for t in shortest
        .iter()
        .filter(|t| t.get(0) == Some(&Value::addr(0u32)))
    {
        println!(
            "  shortestPath(a, {}, [{}], {})",
            name(t.get(1).unwrap()),
            path_vector(&Tuple::new(vec![
                t.get(0).unwrap().clone(),
                t.get(1).unwrap().clone(),
                Value::nil(),
                t.get(2).unwrap().clone(),
                t.get(3).unwrap().clone(),
            ])),
            t.get(3).and_then(|v| v.as_f64()).unwrap()
        );
    }

    let a_to_b = shortest
        .iter()
        .find(|t| t.get(0) == Some(&Value::addr(0u32)) && t.get(1) == Some(&Value::addr(1u32)))
        .expect("a -> b");
    assert_eq!(a_to_b.get(3), Some(&Value::Float(2.0)));
    assert_eq!(
        a_to_b.get(2),
        Some(&Value::list(vec![
            Value::addr(0u32),
            Value::addr(2u32),
            Value::addr(1u32)
        ]))
    );
    println!("\nok: shortestPath(a,b) = [a,c,b] with cost 2, as in Section 2.2");
}
