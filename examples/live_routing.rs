//! Live route monitoring over the paper's figure-2 topology.
//!
//! A `serve::Service` runs the shortest-path program over the five-node
//! graph while a subscriber watches `shortestPath` from node a. The link
//! churn loop then breaks and restores edges; every loss, reroute and
//! recovery arrives as an exact insert/retract delta on the live stream —
//! no polling, no recomputation from scratch.
//!
//! Run with: `cargo run --example live_routing`

use ndlog::lang::{programs, Value};
use ndlog::runtime::{Sign, Tuple, TupleDelta};
use ndlog::serve::{DeltaEvent, EventSink, NullSink, Service};
use std::sync::Arc;

const NAMES: [&str; 5] = ["a", "b", "c", "d", "e"];

fn name(value: &Value) -> String {
    match value {
        Value::Addr(addr) => {
            let idx = addr.index();
            NAMES
                .get(idx)
                .map_or_else(|| format!("{addr}"), |n| (*n).to_string())
        }
        other => format!("{other}"),
    }
}

/// Print each delta as it happens, as a routing-table narration.
struct Narrator;

impl EventSink for Narrator {
    fn deliver(&self, event: &DeltaEvent) {
        let t = &event.delta.tuple;
        let (src, dst) = (name(t.get(0).unwrap()), name(t.get(1).unwrap()));
        let cost = t.get(3).unwrap();
        match event.delta.sign {
            Sign::Insert => {
                println!(
                    "  [epoch {}] + route {src} -> {dst} at cost {cost}",
                    event.epoch
                )
            }
            Sign::Delete => {
                println!(
                    "  [epoch {}] - route {src} -> {dst} (was cost {cost})",
                    event.epoch
                )
            }
        }
    }
}

fn both_ways(sign: Sign, a: u32, b: u32, c: f64) -> Vec<TupleDelta> {
    [(a, b), (b, a)]
        .into_iter()
        .map(|(s, d)| {
            let tuple = Tuple::new(vec![Value::addr(s), Value::addr(d), Value::Float(c)]);
            match sign {
                Sign::Insert => TupleDelta::insert("link", tuple),
                Sign::Delete => TupleDelta::delete("link", tuple),
            }
        })
        .collect()
}

fn main() {
    let service = Service::from_program(&programs::shortest_path("")).expect("program plans");
    let operator = service.open_session(Arc::new(NullSink));

    // Figure 2: a—b costs 5, but a—c—b costs 2.
    let edges: [(u32, u32, f64); 5] = [
        (0, 1, 5.0),
        (0, 2, 1.0),
        (2, 1, 1.0),
        (1, 3, 1.0),
        (4, 0, 1.0),
    ];
    let mut seed = Vec::new();
    for (a, b, c) in edges {
        seed.extend(both_ways(Sign::Insert, a, b, c));
    }
    operator.apply_batch(seed).expect("base graph applies");

    println!("subscribing to shortestPath from node a:");
    let monitor = service.open_session(Arc::new(Narrator));
    monitor
        .execute_line(".subscribe shortestPath(@n0, _, _, _)")
        .expect("subscribe");

    println!("\nbreaking the cheap a--c link (a->b must reroute via the direct edge):");
    operator
        .apply_batch(both_ways(Sign::Delete, 0, 2, 1.0))
        .expect("delete applies");

    println!("\nbreaking a--b entirely (b and d become unreachable from a):");
    operator
        .apply_batch(both_ways(Sign::Delete, 0, 1, 5.0))
        .expect("delete applies");

    println!("\nrestoring a--c (routes to b, c, d come back through c):");
    operator
        .apply_batch(both_ways(Sign::Insert, 0, 2, 1.0))
        .expect("insert applies");

    println!(
        "\nfinal routing table at node a (epoch {}):",
        service.epoch()
    );
    for (rel, _, tuple) in service.fingerprint() {
        if rel == "shortestPath" && tuple.get(0) == Some(&Value::addr(0u32)) {
            println!(
                "  {} -> {} at cost {}",
                name(tuple.get(0).unwrap()),
                name(tuple.get(1).unwrap()),
                tuple.get(3).unwrap()
            );
        }
    }
}
