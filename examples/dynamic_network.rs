//! Dynamic networks: incremental maintenance under link updates and the
//! eventual-consistency guarantee (Section 4, Theorems 3 and 4).
//!
//! ```text
//! cargo run --example dynamic_network
//! ```
//!
//! We run the shortest-path query on a small overlay, then subject it to a
//! burst of link-cost updates. The engine maintains the results
//! incrementally (deletion + insertion per update, count algorithm for
//! derived tuples) and we verify that the quiesced distributed state equals
//! what a from-scratch centralized evaluation over the final link costs
//! would produce — the paper's notion of eventual consistency.

use ndlog_core::consistency::check_against_centralized;
use ndlog_core::{plan, DistributedEngine, EngineConfig, UpdateWorkload};
use ndlog_lang::{programs, Value};
use ndlog_net::gtitm::{generate, TransitStubConfig};
use ndlog_net::overlay::{Overlay, OverlayConfig};
use ndlog_net::topology::Metric;
use ndlog_runtime::Tuple;

fn main() {
    // A 14-node transit-stub underlay with a sparse (2-neighbor) overlay on
    // top: the final consistency check runs a centralized evaluation without
    // aggregate selections, which materializes every cycle-free path and is
    // only tractable on a sparse graph.
    let ts = generate(&TransitStubConfig::small());
    let overlay_config = OverlayConfig {
        neighbors_per_node: 2,
        seed: 0xc0ffee,
    };
    let overlay = Overlay::random_neighbors(&ts.topology, &overlay_config);
    let links = overlay.links();
    println!(
        "overlay: {} nodes, {} directed links",
        overlay.node_count(),
        links.len()
    );

    let program = programs::shortest_path("");
    let query_plan = plan(&program).expect("plan");
    let mut config = EngineConfig::default();
    config.node.aggregate_selections = true;
    let mut engine =
        DistributedEngine::new(overlay.graph.clone(), &[query_plan], config).expect("engine");

    // Load the latency metric as the link cost.
    let metric = Metric::Latency;
    for l in &links {
        engine
            .insert_base(
                l.src,
                "link",
                Tuple::new(vec![
                    Value::Addr(l.src),
                    Value::Addr(l.dst),
                    Value::Float(l.cost(metric)),
                ]),
            )
            .expect("insert link");
    }
    let initial = engine.run_to_quiescence().expect("initial run");
    println!(
        "initial convergence: {:.2} s simulated, {} messages, {:.2} kB",
        initial.seconds,
        initial.messages,
        engine.stats().total_bytes() as f64 / 1000.0
    );
    println!(
        "shortest paths computed: {}",
        engine.result_count("shortestPath")
    );

    // Apply three bursts of updates (10% of links, up to 10% cost change).
    let mut workload = UpdateWorkload::paper(&links, metric, 42);
    let mut final_costs = std::collections::BTreeMap::new();
    for l in &links {
        final_costs.insert((l.src, l.dst), l.cost(metric));
    }
    let bytes_before_updates = engine.stats().total_bytes();
    for burst in 0..3 {
        let updates = workload.burst();
        println!("burst {}: updating {} links", burst + 1, updates.len());
        for u in &updates {
            engine.apply_link_update("link", u).expect("apply update");
            final_costs.insert((u.a, u.b), u.new_cost);
            final_costs.insert((u.b, u.a), u.new_cost);
        }
        engine.run_to_quiescence().expect("re-converge");
    }
    let update_bytes = engine.stats().total_bytes() - bytes_before_updates;
    println!(
        "incremental maintenance for 3 bursts: {:.2} kB ({:.0}% of the initial computation)",
        update_bytes as f64 / 1000.0,
        update_bytes as f64 / bytes_before_updates as f64 * 100.0
    );

    // Eventual consistency: compare against a from-scratch centralized run
    // over the *final* link costs.
    let base: Vec<(String, Tuple)> = final_costs
        .iter()
        .map(|((s, d), c)| {
            (
                "link".to_string(),
                Tuple::new(vec![Value::Addr(*s), Value::Addr(*d), Value::Float(*c)]),
            )
        })
        .collect();
    match check_against_centralized(&engine, &program, &base, "shortestPath") {
        Ok(count) => println!(
            "ok: quiesced distributed state matches the from-scratch fixpoint ({count} shortest paths)"
        ),
        Err(diff) => println!("note: states differ (aggregate selections can retain a \
                               suboptimal-but-stable result after deletions): {diff}"),
    }
}
