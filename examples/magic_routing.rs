//! Magic sets, predicate reordering and result caching (Section 5.1.2 and
//! 5.2): targeted source-to-destination path discovery instead of all-pairs
//! computation.
//!
//! ```text
//! cargo run --example magic_routing
//! ```
//!
//! The example contrasts three executions on the same overlay:
//!
//! 1. the unconstrained all-pairs shortest-path query (No-MS baseline);
//! 2. the magic, top-down (source-routing) query constrained to one
//!    (source, destination) pair — dramatically cheaper;
//! 3. a second constrained query towards the same destination with the
//!    query-result cache populated by the first — cheaper still, because
//!    exploration stops at nodes that already know a path to the
//!    destination.

use ndlog_core::caching::QueryCache;
use ndlog_core::{plan, DistributedEngine, EngineConfig};
use ndlog_lang::{programs, Value};
use ndlog_net::gtitm::{generate, TransitStubConfig};
use ndlog_net::overlay::{Overlay, OverlayConfig};
use ndlog_net::topology::Metric;
use ndlog_net::NodeAddr;
use ndlog_runtime::Tuple;
use std::collections::BTreeMap;

fn load_links(engine: &mut DistributedEngine, overlay: &Overlay, relation: &str) {
    for l in overlay.links() {
        engine
            .insert_base(
                l.src,
                relation,
                Tuple::new(vec![
                    Value::Addr(l.src),
                    Value::Addr(l.dst),
                    Value::Float(l.cost(Metric::HopCount)),
                ]),
            )
            .expect("insert link");
    }
}

fn main() {
    let ts = generate(&TransitStubConfig::small());
    let overlay = Overlay::random_neighbors(&ts.topology, &OverlayConfig::default());
    let n = overlay.node_count();
    println!("overlay with {n} nodes");

    // 1. The all-pairs baseline.
    let mut config = EngineConfig::default();
    config.node.aggregate_selections = true;
    let mut all_pairs = DistributedEngine::new(
        overlay.graph.clone(),
        &[plan(&programs::shortest_path("")).unwrap()],
        config.clone(),
    )
    .unwrap();
    load_links(&mut all_pairs, &overlay, "link");
    all_pairs.run_to_quiescence().unwrap();
    println!(
        "all-pairs (No-MS): {} results, {:.2} kB",
        all_pairs.result_count("shortestPath"),
        all_pairs.stats().total_bytes() as f64 / 1000.0
    );

    // 2. One constrained query: source 0, destination n-1.
    let src = NodeAddr(0);
    let dst = NodeAddr((n - 1) as u32);
    let run_constrained = |blocked: BTreeMap<String, std::collections::BTreeSet<NodeAddr>>| {
        let mut config = EngineConfig::default();
        config.node.aggregate_selections = true;
        config.blocked_propagation = blocked;
        let mut engine = DistributedEngine::new(
            overlay.graph.clone(),
            &[plan(&programs::shortest_path_source_routing("")).unwrap()],
            config,
        )
        .unwrap();
        load_links(&mut engine, &overlay, "link");
        engine
            .insert_base(src, "magicSrc", Tuple::new(vec![Value::Addr(src)]))
            .unwrap();
        engine
            .insert_base(dst, "magicDst", Tuple::new(vec![Value::Addr(dst)]))
            .unwrap();
        engine.run_to_quiescence().unwrap();
        engine
    };

    let first = run_constrained(BTreeMap::new());
    let result = first
        .results("shortestPath")
        .into_iter()
        .find(|(node, t)| *node == dst && t.get(1) == Some(&Value::Addr(src)));
    let path: Vec<NodeAddr> = result
        .as_ref()
        .and_then(|(_, t)| t.get(2))
        .and_then(Value::as_list)
        .map(|l| l.iter().filter_map(Value::as_addr).collect())
        .unwrap_or_default();
    println!(
        "magic query {src} -> {dst}: path {:?} ({} hops), {:.2} kB \
         ({:.1}% of the all-pairs cost)",
        path.iter().map(|a| a.0).collect::<Vec<_>>(),
        path.len().saturating_sub(1),
        first.stats().total_bytes() as f64 / 1000.0,
        first.stats().total_bytes() as f64 / all_pairs.stats().total_bytes() as f64 * 100.0
    );

    // 3. Populate the cache from the first answer and re-run a query for
    //    the same destination from a different source: exploration is cut
    //    short at cached nodes.
    let mut cache = QueryCache::new();
    cache.record_result(&path, &vec![1.0; path.len().saturating_sub(1)]);
    let blocked = cache.blocked_map("pathDst", dst);
    println!(
        "cache holds entries for destination {dst} at {} node(s)",
        cache.nodes_with_entry_for(dst).len()
    );
    let second = run_constrained(blocked);
    println!(
        "same-destination query with caching: {:.2} kB (vs {:.2} kB uncached)",
        second.stats().total_bytes() as f64 / 1000.0,
        first.stats().total_bytes() as f64 / 1000.0
    );
    assert!(second.stats().total_bytes() <= first.stats().total_bytes());
    println!("ok: caching never increases the communication of the constrained query");
}
