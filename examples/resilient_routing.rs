//! Distance-vector routing with split horizon, stressed by deterministic
//! fault injection (Section 4.2: soft state + refresh makes the protocol
//! self-healing).
//!
//! ```text
//! cargo run --example resilient_routing
//! ```
//!
//! The protocol is the classic distance-vector computation written as four
//! NDlog rules, with *split horizon*: a node never accepts a route back
//! from the neighbor that is that route's next hop (`N != S` in rule dh2),
//! the damping that removes two-node count-to-infinity loops. Every
//! relation is declared soft state with a TTL, so the protocol survives an
//! adversarial network: we run it under a seeded fault plan injecting 20%
//! message loss, duplication and delivery jitter plus a node crash/rejoin,
//! while periodic refresh re-announces the link facts. Lost advertisements
//! are repaired by the next refresh cycle; the crashed node rejoins empty
//! and repopulates. After the schedule quiesces, the best-route costs must
//! equal the Dijkstra oracle on the healed topology — which we check.

use ndlog_core::{plan, DistributedEngine, EngineConfig, RefreshConfig};
use ndlog_lang::{programs, Value};
use ndlog_net::gtitm::{generate, TransitStubConfig};
use ndlog_net::overlay::{Overlay, OverlayConfig};
use ndlog_net::sim::ms;
use ndlog_net::topology::Metric;
use ndlog_net::{FaultPlan, LinkFaults, NodeAddr};
use ndlog_runtime::Tuple;

/// Soft-state TTL for every relation of the protocol (seconds).
const TTL_S: f64 = 5.0;
/// Refresh re-announcement interval (seconds).
const REFRESH_S: f64 = 2.0;
/// Random faults (loss/duplication/jitter) stop at this time (seconds).
const FAULTS_END_S: f64 = 4.0;

fn main() {
    let ts = generate(&TransitStubConfig::small());
    let overlay_config = OverlayConfig {
        neighbors_per_node: 3,
        seed: 0xd17e,
    };
    let overlay = Overlay::random_neighbors(&ts.topology, &overlay_config);
    let addrs: Vec<NodeAddr> = overlay.graph.nodes().collect();
    println!(
        "overlay: {} nodes, {} directed links",
        overlay.node_count(),
        overlay.links().len()
    );

    // 20% loss, 5% duplication and up to 2 ms jitter on every link until
    // t=4s, plus one node crashing at 2s and rejoining at 3.5s. The same
    // seed always replays the same faults.
    let crashed = addrs[3];
    let fault = FaultPlan::new(0x5eed)
        .with_default_faults(LinkFaults {
            loss: 0.20,
            duplicate: 0.05,
            jitter_ms: 2.0,
        })
        .with_active_until(ms(FAULTS_END_S * 1000.0))
        .with_crash(crashed, ms(2_000.0), ms(3_500.0));
    println!(
        "fault plan: 20% loss / 5% duplication / 2 ms jitter until {FAULTS_END_S} s, \
         node {crashed} down 2.0 s - 3.5 s"
    );

    // Refresh outlives the faults by TTL (stale state expires) plus a few
    // cycles (live state keeps being re-announced afterwards).
    let horizon_s = FAULTS_END_S + TTL_S + 4.0 * REFRESH_S;
    let program = programs::distance_vector_split_horizon("", 8, Some(TTL_S));
    let query_plan = plan(&program).expect("plan");
    let mut config = EngineConfig::default();
    config.node.aggregate_selections = true;
    config.max_seconds = horizon_s + 30.0;
    config.fault = Some(fault);
    config.refresh = Some(RefreshConfig {
        interval_seconds: REFRESH_S,
        horizon_seconds: horizon_s,
    });
    let mut engine =
        DistributedEngine::new(overlay.graph.clone(), &[query_plan], config).expect("engine");

    let metric = Metric::Reliability;
    for l in overlay.links() {
        engine
            .insert_base(
                l.src,
                "link",
                Tuple::new(vec![
                    Value::Addr(l.src),
                    Value::Addr(l.dst),
                    Value::Float(l.cost(metric)),
                ]),
            )
            .expect("insert link");
    }

    let report = engine.run_to_quiescence().expect("run");
    assert!(report.quiesced, "hit the time cap before quiescing");
    println!(
        "quiesced after {:.2} s simulated, {} messages, {:.2} MB",
        report.seconds, report.messages, report.total_mb
    );

    let stats = engine.fault_stats();
    println!(
        "faults: {} dropped ({} loss, {} crash window), {} duplicated, {} jittered",
        stats.dropped, stats.loss_drops, stats.crash_drops, stats.duplicated, stats.delayed
    );
    let repair = engine.fault_repair_report();
    println!(
        "healing: {} distinct insertions lost in flight, {} present again at their \
         destination; {} refresh tasks re-announced {} facts",
        repair.dropped_inserts, repair.repaired, repair.refresh_ticks, repair.refresh_reannounced
    );

    // The converged best-route costs must equal the Dijkstra oracle on the
    // healed topology at every node — loss, churn and the crash left no
    // scars. (`bestCost(@S, D, C)`: cost of S's best route to D.)
    let mut checked = 0usize;
    for src in overlay.graph.nodes() {
        let oracle = overlay.graph.shortest_distances(src, metric);
        for (node, tuple) in engine.results("bestCost") {
            if node != src {
                continue;
            }
            let dst = tuple.get(1).unwrap().as_addr().unwrap();
            // The hop-bounded formulation also derives cyclic self-routes
            // (S -> ... -> S); the oracle has nothing to say about those.
            if dst == src {
                continue;
            }
            let cost = tuple.get(2).unwrap().as_f64().unwrap();
            assert!(
                (cost - oracle[dst.index()]).abs() < 1e-6,
                "cost mismatch {src}->{dst}: {cost} vs oracle {}",
                oracle[dst.index()]
            );
            checked += 1;
        }
    }
    println!("verified {checked} best-route costs against the Dijkstra oracle");

    // Split horizon is not just loop damping — it also suppresses the
    // useless reverse advertisements. Measure that head-to-head on the
    // full (unpruned) route tables: both protocols fault-free with
    // aggregate selections off, where the `N != S` filter makes the
    // split-horizon route set a strict subset of the plain one. (The hop
    // bound is lowered to keep the unpruned tables small.)
    let full_routes = |program: &ndlog_lang::Program| -> usize {
        let config = EngineConfig {
            max_seconds: 120.0,
            ..Default::default()
        };
        let mut engine = DistributedEngine::new(
            overlay.graph.clone(),
            &[plan(program).expect("plan")],
            config,
        )
        .expect("engine");
        for l in overlay.links() {
            engine
                .insert_base(
                    l.src,
                    "link",
                    Tuple::new(vec![
                        Value::Addr(l.src),
                        Value::Addr(l.dst),
                        Value::Float(l.cost(metric)),
                    ]),
                )
                .expect("insert link");
        }
        assert!(engine.run_to_quiescence().expect("run").quiesced);
        engine.result_count("route")
    };
    let with_sh = full_routes(&programs::distance_vector_split_horizon("", 4, None));
    let plain = full_routes(&programs::distance_vector("", 4));
    assert!(with_sh < plain, "split horizon suppressed nothing");
    println!(
        "route advertisements within 4 hops: {} with split horizon vs {} without \
         ({:.0}% fewer)",
        with_sh,
        plain,
        100.0 * (1.0 - with_sh as f64 / plain as f64)
    );
}
