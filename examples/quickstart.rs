//! Quickstart: parse an NDlog program, plan it, and run it on a small
//! simulated network.
//!
//! ```text
//! cargo run --example quickstart
//! ```
//!
//! The program is the paper's all-pairs shortest-path query (Figure 1,
//! rules SP1-SP4). We build the 5-node example network of Figure 2, run the
//! query with the distributed engine, and print every node's shortest
//! paths together with the communication the computation cost.

use ndlog_core::{plan, DistributedEngine, EngineConfig};
use ndlog_lang::{parse_program, validate, Value};
use ndlog_net::topology::{LinkMetrics, Topology};
use ndlog_net::NodeAddr;
use ndlog_runtime::Tuple;

fn main() {
    // 1. Write the NDlog program (location specifiers with `@`, a link
    //    literal with `#`, an aggregate head `min<C>`).
    let source = r#"
        materialize(link, keys(1,2)).
        materialize(path, keys(1,2,4)).
        materialize(spCost, keys(1,2)).
        materialize(shortestPath, keys(1,2)).

        sp1 path(@S,@D,@D,P,C) :- #link(@S,@D,C),
            P := f_cons(S, f_cons(D, nil)).
        sp2 path(@S,@D,@Z,P,C) :- #link(@S,@Z,C1), path(@Z,@D,@Z2,P2,C2),
            f_member(P2, S) == 0, C := C1 + C2, P := f_cons(S, P2).
        sp3 spCost(@S,@D,min<C>) :- path(@S,@D,@Z,P,C).
        sp4 shortestPath(@S,@D,P,C) :- spCost(@S,@D,C), path(@S,@D,@Z,P,C).

        query shortestPath(@S,@D,P,C).
    "#;

    // 2. Parse and validate against the NDlog constraints (Definition 6).
    let program = parse_program(source).expect("the program parses");
    let violations = validate(&program);
    assert!(
        violations.is_empty(),
        "NDlog constraints violated: {violations:?}"
    );

    // 3. Plan: localization (Algorithm 2), semi-naive strands, aggregate
    //    views and aggregate selections.
    let plan = plan(&program).expect("the program plans");
    println!(
        "planned {} rule strands, {} aggregate view(s)",
        plan.strands.len(),
        plan.aggregate_rules.len()
    );

    // 4. Build the network of Figure 2: a-b (5), a-c (1), c-b (1), b-d (1),
    //    e-a (1). Addresses: a=0, b=1, c=2, d=3, e=4.
    let mut graph = Topology::with_nodes(5);
    let edges = [
        (0u32, 1u32, 5.0),
        (0, 2, 1.0),
        (2, 1, 1.0),
        (1, 3, 1.0),
        (4, 0, 1.0),
    ];
    for &(a, b, _) in &edges {
        graph
            .add_link(NodeAddr(a), NodeAddr(b), LinkMetrics::uniform())
            .expect("distinct edges");
    }

    // 5. Run it distributed: one engine per node, messages only along links.
    let mut config = EngineConfig::default();
    config.node.aggregate_selections = true;
    let mut engine = DistributedEngine::new(graph, &[plan], config).expect("engine");
    for (a, b, c) in edges {
        for (s, d) in [(a, b), (b, a)] {
            engine
                .insert_base(
                    NodeAddr(s),
                    "link",
                    Tuple::new(vec![Value::addr(s), Value::addr(d), Value::Float(c)]),
                )
                .expect("base insert");
        }
    }
    let report = engine.run_to_quiescence().expect("run");

    // 6. Inspect the results: shortestPath tuples live at their source node.
    let names = ["a", "b", "c", "d", "e"];
    println!(
        "\nconverged in {:.3} s (simulated), {} messages, {:.1} kB total",
        report.seconds,
        report.messages,
        engine.stats().total_bytes() as f64 / 1000.0
    );
    let mut results = engine.results("shortestPath");
    results.sort_by_key(|(node, t)| (*node, t.get(1).cloned()));
    println!("\nshortest paths (stored at each source node):");
    for (node, tuple) in results {
        let dst = tuple.get(1).and_then(Value::as_addr).unwrap();
        let cost = tuple.get(3).and_then(|v| v.as_f64()).unwrap();
        let path: Vec<&str> = tuple
            .get(2)
            .and_then(Value::as_list)
            .unwrap()
            .iter()
            .filter_map(|v| v.as_addr())
            .map(|a| names[a.index()])
            .collect();
        println!(
            "  {} -> {}: cost {:>4}  via {}",
            names[node.index()],
            names[dst.index()],
            cost,
            path.join(" -> ")
        );
    }

    // The headline fact from Section 2.2: a reaches b via c with cost 2,
    // not over the direct cost-5 link.
    let a_to_b = engine
        .results("shortestPath")
        .into_iter()
        .find(|(n, t)| *n == NodeAddr(0) && t.get(1) == Some(&Value::addr(1u32)))
        .expect("a -> b result");
    assert_eq!(a_to_b.1.get(3), Some(&Value::Float(2.0)));
    println!("\nok: a reaches b via c with cost 2 (not the direct cost-5 link)");
}
