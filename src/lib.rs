//! Facade crate for the NDlog declarative-networking workspace.
//!
//! The implementation lives in the member crates; this crate re-exports
//! their public roots so downstream users (and the workspace-level
//! integration tests under `tests/` and programs under `examples/`) can
//! depend on a single package:
//!
//! * [`lang`] — the NDlog language frontend (parser, validation,
//!   localization, semi-naive rewrite, canonical programs);
//! * [`net`] — topologies, overlays and the deterministic discrete-event
//!   network simulator;
//! * [`runtime`] — single-node evaluation: indexed relations, compiled
//!   rule strands with probe plans, SN/BSN/PSN evaluators;
//! * [`core`] — the distributed engine: planning, per-node engines and the
//!   event loop with communication accounting;
//! * [`serve`] — the interactive shell and line-protocol network service
//!   with live incremental query subscriptions.

pub use ndlog_core as core;
pub use ndlog_lang as lang;
pub use ndlog_net as net;
pub use ndlog_runtime as runtime;
pub use ndlog_serve as serve;
